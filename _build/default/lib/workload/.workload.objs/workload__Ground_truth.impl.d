lib/workload/ground_truth.ml: Array Ffs Float Fun Hashtbl Inode_pool List Op Util
