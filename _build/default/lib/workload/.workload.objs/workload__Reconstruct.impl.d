lib/workload/reconstruct.ml: Array Ffs Float Fun Hashtbl List Nfs_source Op Option Snapshot Util
