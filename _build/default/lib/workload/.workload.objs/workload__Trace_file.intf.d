lib/workload/trace_file.mli: Op
