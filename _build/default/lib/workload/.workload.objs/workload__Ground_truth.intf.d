lib/workload/ground_truth.mli: Ffs Op Util
