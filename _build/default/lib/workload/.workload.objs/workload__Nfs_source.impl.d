lib/workload/nfs_source.ml: Array Float Util
