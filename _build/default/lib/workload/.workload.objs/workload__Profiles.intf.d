lib/workload/profiles.mli: Ffs Op
