lib/workload/inode_pool.ml: Array Ffs
