(** Inode-number pools for the ground-truth generator.

    The generator must hand out inode numbers the way the original file
    system did — lowest free slot in the owning cylinder group, spilling
    to later groups when one fills — because the replayer derives each
    file's cylinder group from its inode number. *)

type t

val create : Ffs.Params.t -> t
val copy : t -> t

val alloc : t -> cg:int -> int option
(** Lowest free inode number whose group is [cg]; if the group is out of
    inodes, the nearest following group with a free slot (wrapping).
    [None] only if every group is full. *)

val free : t -> int -> unit
val is_allocated : t -> int -> bool
val allocated_count : t -> int

val cg_of : t -> int -> int
(** The cylinder group an inode number belongs to. *)
