type file_record = { ino : int; size : int; ctime : float }
type t = { day : int; files : file_record array }

let capture_nightly ops ~days =
  let live : (int, file_record) Hashtbl.t = Hashtbl.create 4096 in
  let snapshots = Util.Vec.create () in
  let snap day =
    let files = Hashtbl.fold (fun _ r acc -> r :: acc) live [] in
    let files = Array.of_list files in
    Array.sort (fun a b -> compare a.ino b.ino) files;
    Util.Vec.push snapshots { day; files }
  in
  let next_day = ref 0 in
  let day_end d = float_of_int (d + 1) *. Op.seconds_per_day in
  Array.iter
    (fun op ->
      while !next_day < days && Op.time_of op >= day_end !next_day do
        snap !next_day;
        incr next_day
      done;
      match op with
      | Op.Create { ino; size; time } -> Hashtbl.replace live ino { ino; size; ctime = time }
      | Op.Modify { ino; size; time } -> Hashtbl.replace live ino { ino; size; ctime = time }
      | Op.Delete { ino; _ } -> Hashtbl.remove live ino)
    ops;
  while !next_day < days do
    snap !next_day;
    incr next_day
  done;
  Util.Vec.to_array snapshots

let find t ino =
  let files = t.files in
  let rec search lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let r = files.(mid) in
      if r.ino = ino then Some r else if r.ino < ino then search (mid + 1) hi else search lo mid
    end
  in
  search 0 (Array.length files)

let live_bytes t = Array.fold_left (fun acc r -> acc + r.size) 0 t.files
