type kind = Home | News | Database | Personal

let all = [ Home; News; Database; Personal ]

let name = function
  | Home -> "home"
  | News -> "news"
  | Database -> "database"
  | Personal -> "personal"

let of_name = function
  | "home" -> Some Home
  | "news" -> Some News
  | "database" -> Some Database
  | "personal" -> Some Personal
  | _ -> None

let day_seconds = Op.seconds_per_day

(* emit a Create now and queue the inode for deletion later *)
type emitter = {
  params : Ffs.Params.t;
  pool : Inode_pool.t;
  ops : Op.t Util.Vec.t;
  rng : Util.Prng.t;
  last_op : (int, float) Hashtbl.t;  (* per-inode monotonicity *)
}

let emitter params ~seed =
  {
    params;
    pool = Inode_pool.create params;
    ops = Util.Vec.create ();
    rng = Util.Prng.create ~seed;
    last_op = Hashtbl.create 4096;
  }

let monotonic e ino time =
  let time =
    match Hashtbl.find_opt e.last_op ino with
    | Some last when time <= last -> last +. 1.0
    | Some _ | None -> time
  in
  Hashtbl.replace e.last_op ino time;
  time

let emit_create e ~cg ~size ~time =
  match Inode_pool.alloc e.pool ~cg with
  | None -> None
  | Some ino ->
      let time = monotonic e ino time in
      Util.Vec.push e.ops (Op.Create { ino; size; time });
      Some ino

let emit_delete e ~ino ~time =
  let time = monotonic e ino time in
  Inode_pool.free e.pool ino;
  Hashtbl.remove e.last_op ino;
  (* the inode may be reallocated; its clock restarts at this delete *)
  Hashtbl.replace e.last_op ino time;
  Util.Vec.push e.ops (Op.Delete { ino; time })

let emit_modify e ~ino ~size ~time =
  let time = monotonic e ino time in
  Util.Vec.push e.ops (Op.Modify { ino; size; time })

let finish e =
  let ops = Util.Vec.to_array e.ops in
  Op.sort_by_time ops;
  ops

(* --- news ------------------------------------------------------------------- *)

let article_size =
  Util.Dist.mixture
    [|
      (Util.Dist.lognormal_of_median ~median:2200.0 ~sigma:0.8, 0.92);
      (Util.Dist.uniform ~lo:65536.0 ~hi:524288.0, 0.08);
    |]
  |> Util.Dist.truncate ~lo:512.0 ~hi:1048576.0

let build_news params ~days ~seed =
  let e = emitter params ~seed in
  let ncg = params.Ffs.Params.ncg in
  (* size the arrival rate so the spool plateaus around 80% full at the
     retention period *)
  let retention = 6 in
  let data = float_of_int (Ffs.Params.data_bytes params) in
  let mean_article = Util.Dist.mean_estimate article_size in
  let per_day = int_of_float (0.8 *. data /. mean_article /. float_of_int retention) in
  let expiry = Queue.create () in
  for day = 0 to days - 1 do
    let day_start = float_of_int day *. day_seconds in
    for n = 0 to per_day - 1 do
      let cg = Util.Prng.int e.rng ncg in
      let time = day_start +. (86400.0 *. float_of_int n /. float_of_int per_day) in
      let size = int_of_float (Util.Dist.sample article_size e.rng) in
      match emit_create e ~cg ~size ~time with
      | Some ino -> Queue.add (ino, day + retention) expiry
      | None -> ()
    done;
    let rec expire () =
      match Queue.peek_opt expiry with
      | Some (ino, due) when due <= day ->
          ignore (Queue.pop expiry);
          emit_delete e ~ino ~time:(day_start +. 120.0 +. Util.Prng.float e.rng 1800.0);
          expire ()
      | _ -> ()
    in
    expire ()
  done;
  finish e

(* --- database ----------------------------------------------------------------- *)

let build_database params ~days ~seed =
  let e = emitter params ~seed in
  let ncg = params.Ffs.Params.ncg in
  let data = Ffs.Params.data_bytes params in
  (* a dozen tables taking ~55% of the disk, logs rotating through ~15% *)
  let tables = 12 in
  let table_size () = (data * 55 / 100 / tables) + Util.Prng.int e.rng (data / 100) in
  let table_inos =
    Array.init tables (fun i ->
        let size = table_size () in
        match emit_create e ~cg:(i mod ncg) ~size ~time:(600.0 +. float_of_int (i * 120)) with
        | Some ino -> ino
        | None -> failwith "database profile: could not place a table")
  in
  (* write-ahead logs scale with the file system (~0.5%% each) *)
  let log_size = max (64 * 1024) (data / 200) in
  let live_logs = Queue.create () in
  for day = 0 to days - 1 do
    let day_start = float_of_int day *. day_seconds in
    (* checkpoint: a few tables rewritten, slightly grown *)
    let checkpoints = 2 + Util.Prng.int e.rng 3 in
    for _ = 1 to checkpoints do
      let ino = table_inos.(Util.Prng.int e.rng tables) in
      let size = table_size () in
      emit_modify e ~ino ~size ~time:(day_start +. 3600.0 +. Util.Prng.float e.rng 72000.0)
    done;
    (* write-ahead logs: created through the day, kept for two days *)
    let logs_today = 16 + Util.Prng.int e.rng 8 in
    for n = 0 to logs_today - 1 do
      let time = day_start +. (86400.0 *. float_of_int n /. float_of_int logs_today) in
      match emit_create e ~cg:(Util.Prng.int e.rng ncg) ~size:log_size ~time with
      | Some ino -> Queue.add (ino, day + 2) live_logs
      | None -> ()
    done;
    let rec expire () =
      match Queue.peek_opt live_logs with
      | Some (ino, due) when due <= day ->
          ignore (Queue.pop live_logs);
          emit_delete e ~ino ~time:(day_start +. 1800.0 +. Util.Prng.float e.rng 3600.0);
          expire ()
      | _ -> ()
    in
    expire ()
  done;
  finish e

(* --- personal ------------------------------------------------------------------- *)

let document_size =
  Util.Dist.lognormal_of_median ~median:12288.0 ~sigma:1.2
  |> Util.Dist.truncate ~lo:512.0 ~hi:2097152.0

let cache_size =
  Util.Dist.lognormal_of_median ~median:4096.0 ~sigma:1.0
  |> Util.Dist.truncate ~lo:256.0 ~hi:262144.0

let build_personal params ~days ~seed =
  let e = emitter params ~seed in
  let ncg = params.Ffs.Params.ncg in
  let documents = Util.Vec.create () in
  (* downloads, installs and media accumulate toward ~45% of the disk
     over the run; a fraction is deleted after a retention period *)
  let data = Ffs.Params.data_bytes params in
  let bulk_per_day = data * 45 / 100 / days in
  let bulk_size = Util.Dist.truncate ~lo:65536.0 ~hi:(float_of_int (data / 16))
      (Util.Dist.lognormal_of_median ~median:524288.0 ~sigma:1.0) in
  let bulk_pending = Queue.create () in
  for day = 0 to days - 1 do
    let day_start = float_of_int day *. day_seconds in
    let weekend = day mod 7 >= 5 in
    (* bulk arrivals (downloads, installs), some expiring after a week *)
    let bulk_today = ref 0 in
    while !bulk_today < bulk_per_day do
      let size = int_of_float (Util.Dist.sample bulk_size e.rng) in
      let time = day_start +. (3600.0 *. (10.0 +. Util.Prng.float e.rng 10.0)) in
      (match emit_create e ~cg:(Util.Prng.int e.rng ncg) ~size ~time with
      | Some ino ->
          if Util.Prng.chance e.rng 0.35 then
            Queue.add (ino, day + 3 + Util.Prng.int e.rng 11) bulk_pending
      | None -> ());
      bulk_today := !bulk_today + size
    done;
    let rec expire_bulk () =
      match Queue.peek_opt bulk_pending with
      | Some (ino, due) when due <= day ->
          ignore (Queue.pop bulk_pending);
          emit_delete e ~ino ~time:(day_start +. 600.0 +. Util.Prng.float e.rng 3600.0);
          expire_bulk ()
      | _ -> ()
    in
    expire_bulk ();
    let sessions = if weekend then 1 else 2 + Util.Prng.int e.rng 3 in
    for _ = 1 to sessions do
      let session_start = day_start +. (3600.0 *. (9.0 +. Util.Prng.float e.rng 10.0)) in
      (* an editing session: save a document several times (modify),
         sometimes a new one *)
      let doc =
        if Util.Vec.length documents > 0 && Util.Prng.chance e.rng 0.7 then
          Some (Util.Vec.get documents (Util.Prng.int e.rng (Util.Vec.length documents)))
        else begin
          let size = int_of_float (Util.Dist.sample document_size e.rng) in
          match emit_create e ~cg:(Util.Prng.int e.rng ncg) ~size ~time:session_start with
          | Some ino ->
              Util.Vec.push documents ino;
              Some ino
          | None -> None
        end
      in
      (match doc with
      | Some ino ->
          let saves = 1 + Util.Prng.int e.rng 5 in
          for s = 1 to saves do
            let size = int_of_float (Util.Dist.sample document_size e.rng) in
            emit_modify e ~ino ~size
              ~time:(session_start +. (600.0 *. float_of_int s))
          done
      | None -> ());
      (* application caches: a burst of small files, most deleted at
         session end *)
      let cache_files = 20 + Util.Prng.int e.rng 30 in
      for c = 0 to cache_files - 1 do
        let time = session_start +. (30.0 *. float_of_int c) in
        let size = int_of_float (Util.Dist.sample cache_size e.rng) in
        match emit_create e ~cg:(Util.Prng.int e.rng ncg) ~size ~time with
        | Some ino ->
            if Util.Prng.chance e.rng 0.85 then
              emit_delete e ~ino ~time:(time +. 3600.0 +. Util.Prng.float e.rng 7200.0)
        | None -> ()
      done
    done
  done;
  finish e

(* --- dispatch --------------------------------------------------------------------- *)

let build params kind ~days ~seed =
  match kind with
  | Home ->
      let profile =
        if days = 300 then Ground_truth.default params
        else Ground_truth.scaled params ~days
      in
      let profile = { profile with Ground_truth.seed } in
      (Ground_truth.generate params profile).Ground_truth.ops
  | News -> build_news params ~days ~seed
  | Database -> build_database params ~days ~seed
  | Personal -> build_personal params ~days ~seed
