(** Synthetic NFS-trace days: the short-lived file traffic.

    Substitutes for the Network Appliance NFS traces the paper mined for
    files created and deleted within one day. Each trace day is a set of
    (create offset, lifetime, size, directory tag) tuples: sizes are
    mostly small with occasional large temporaries, lifetimes are short
    (exponential, minutes), and arrivals cluster in bursts. Directory
    tags group the day's files the way the create requests' directories
    did in the original traces; {!Reconstruct} maps tags onto the
    busiest cylinder groups of each workload day. *)

type pair = {
  offset : float;  (** creation time, seconds from the trace day's start *)
  lifetime : float;  (** seconds until deletion (same day) *)
  size : int;
  dir_tag : int;  (** directory grouping within this trace day *)
}

type day_trace = pair array

val generate : seed:int -> trace_days:int -> pairs_per_day:float -> day_trace array
(** Build a library of [trace_days] independent trace days averaging
    [pairs_per_day] create/delete pairs. Deterministic in [seed]. *)

val total_pairs : day_trace array -> int
