(** Alternative workload profiles — the paper's future work (Section 6):
    "we also plan to generate a variety of different aging workloads
    representative of different file system usage patterns, such as
    news, database, and personal computing workloads."

    Every profile emits the same {!Op} vocabulary, so the aging replayer
    and every benchmark run unchanged against any of them.

    - {!Home}: the research-group home directories the paper used
      (delegates to {!Ground_truth}).
    - {!News}: a news spool — a firehose of small articles expired in
      near-FIFO order after a retention period; high, flat utilization
      and relentless churn.
    - {!Database}: a handful of large table files periodically rewritten
      (grown), plus a rotation of medium-sized write-ahead logs; few
      operations, big extents.
    - {!Personal}: a personal workstation — bursty editing sessions on
      small documents, application caches that churn, weekends quiet. *)

type kind = Home | News | Database | Personal

val all : kind list
val name : kind -> string
val of_name : string -> kind option

val build : Ffs.Params.t -> kind -> days:int -> seed:int -> Op.t array
(** A time-sorted, well-formed workload. Deterministic in [seed]. *)
