(** Workload records: the operations an aging run replays.

    Each operation names the file by the {e inode number it had on the
    original file system}; the replayer derives the target cylinder
    group from it, exactly as the paper's aging tool does. Times are in
    seconds from the start of the workload; a day is 86400 s. *)

type t =
  | Create of { ino : int; size : int; time : float }
  | Delete of { ino : int; time : float }
  | Modify of { ino : int; size : int; time : float }
      (** the paper's model: remove (or truncate to zero) and rewrite *)

val time_of : t -> float
val ino_of : t -> int

val day_of : t -> int
(** 0-based day index. *)

val seconds_per_day : float

val is_write : t -> bool
(** Does the operation write data (create or modify)? *)

val bytes_written : t -> int
(** Data bytes the operation writes (0 for deletes). *)

type stats = {
  operations : int;
  creates : int;
  deletes : int;
  modifies : int;
  total_bytes_written : int;
  days : int;
}

val stats : t array -> stats
val pp_stats : Format.formatter -> stats -> unit

val sort_by_time : t array -> unit
(** Stable in-place sort by timestamp. *)

val check_well_formed : t array -> (unit, string) result
(** Validate: times non-decreasing; no create of a live inode, no
    delete/modify of a dead one. *)
