type t = {
  ipg : int;
  ncg : int;
  used : Ffs.Bitmap.t array;  (* per group *)
  free_counts : int array;
  mutable total_allocated : int;
}

let create params =
  let ipg = Ffs.Params.inodes_per_group params in
  let ncg = params.Ffs.Params.ncg in
  {
    ipg;
    ncg;
    used = Array.init ncg (fun _ -> Ffs.Bitmap.create ipg);
    free_counts = Array.make ncg ipg;
    total_allocated = 0;
  }

let copy t =
  {
    t with
    used = Array.map Ffs.Bitmap.copy t.used;
    free_counts = Array.copy t.free_counts;
  }

let alloc t ~cg =
  assert (cg >= 0 && cg < t.ncg);
  let rec try_cg i =
    if i >= t.ncg then None
    else begin
      let c = (cg + i) mod t.ncg in
      if t.free_counts.(c) = 0 then try_cg (i + 1)
      else
        match Ffs.Bitmap.find_clear t.used.(c) ~start:0 with
        | None -> try_cg (i + 1)
        | Some slot ->
            Ffs.Bitmap.set t.used.(c) slot;
            t.free_counts.(c) <- t.free_counts.(c) - 1;
            t.total_allocated <- t.total_allocated + 1;
            Some ((c * t.ipg) + slot)
    end
  in
  try_cg 0

let free t ino =
  let cg = ino / t.ipg and slot = ino mod t.ipg in
  assert (Ffs.Bitmap.get t.used.(cg) slot);
  Ffs.Bitmap.clear t.used.(cg) slot;
  t.free_counts.(cg) <- t.free_counts.(cg) + 1;
  t.total_allocated <- t.total_allocated - 1

let is_allocated t ino =
  let cg = ino / t.ipg and slot = ino mod t.ipg in
  cg < t.ncg && Ffs.Bitmap.get t.used.(cg) slot

let allocated_count t = t.total_allocated
let cg_of t ino = ino / t.ipg
