let header = "# ffs-repro workload v1"

let emit buf op =
  (match op with
  | Op.Create { ino; size; time } -> Buffer.add_string buf (Fmt.str "C %d %d %.17g" ino size time)
  | Op.Modify { ino; size; time } -> Buffer.add_string buf (Fmt.str "M %d %d %.17g" ino size time)
  | Op.Delete { ino; time } -> Buffer.add_string buf (Fmt.str "D %d %.17g" ino time));
  Buffer.add_char buf '\n'

let to_string ops =
  let buf = Buffer.create (Array.length ops * 24) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Array.iter (emit buf) ops;
  Buffer.contents buf

let save ~path ops =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string ops))

let parse_line lineno line =
  let fail msg = failwith (Fmt.str "trace line %d: %s: %S" lineno msg line) in
  match String.split_on_char ' ' (String.trim line) with
  | [ "C"; ino; size; time ] -> (
      match (int_of_string_opt ino, int_of_string_opt size, float_of_string_opt time) with
      | Some ino, Some size, Some time -> Op.Create { ino; size; time }
      | _ -> fail "malformed create")
  | [ "M"; ino; size; time ] -> (
      match (int_of_string_opt ino, int_of_string_opt size, float_of_string_opt time) with
      | Some ino, Some size, Some time -> Op.Modify { ino; size; time }
      | _ -> fail "malformed modify")
  | [ "D"; ino; time ] -> (
      match (int_of_string_opt ino, float_of_string_opt time) with
      | Some ino, Some time -> Op.Delete { ino; time }
      | _ -> fail "malformed delete")
  | _ -> fail "unrecognized record"

let of_string s =
  let lines = String.split_on_char '\n' s in
  let ops = Util.Vec.create () in
  (match lines with
  | first :: rest ->
      if String.trim first <> header then
        failwith (Fmt.str "trace: bad header %S (expected %S)" first header);
      List.iteri
        (fun i line ->
          let line = String.trim line in
          if line <> "" && not (String.length line > 0 && line.[0] = '#') then
            Util.Vec.push ops (parse_line (i + 2) line))
        rest
  | [] -> failwith "trace: empty input");
  let ops = Util.Vec.to_array ops in
  (match Op.check_well_formed ops with
  | Ok () -> ()
  | Error e -> failwith ("trace: not well-formed: " ^ e));
  ops

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
