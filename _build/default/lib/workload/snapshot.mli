(** Nightly snapshots.

    A snapshot records, for every live file at the end of a day, what
    the paper's data collection recorded: inode number, size, and inode
    change time. Block lists are implicit (the replayer computes layout
    directly). Capturing snapshots from the ground-truth stream and then
    reconstructing a workload from them (see {!Reconstruct}) is how we
    reproduce the paper's Figure 1 fidelity experiment. *)

type file_record = { ino : int; size : int; ctime : float }

type t = { day : int; files : file_record array (* sorted by inode number *) }

val capture_nightly : Op.t array -> days:int -> t array
(** [capture_nightly ops ~days] replays the operation stream logically
    and snapshots the live set at the end of each day (element [d] =
    state at the end of day [d]). [ops] must be time-sorted and
    well-formed. *)

val find : t -> int -> file_record option
(** Binary search by inode number. *)

val live_bytes : t -> int
