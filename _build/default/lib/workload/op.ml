type t =
  | Create of { ino : int; size : int; time : float }
  | Delete of { ino : int; time : float }
  | Modify of { ino : int; size : int; time : float }

let time_of = function Create { time; _ } | Delete { time; _ } | Modify { time; _ } -> time
let ino_of = function Create { ino; _ } | Delete { ino; _ } | Modify { ino; _ } -> ino
let seconds_per_day = 86400.0
let day_of op = int_of_float (time_of op /. seconds_per_day)
let is_write = function Create _ | Modify _ -> true | Delete _ -> false

let bytes_written = function
  | Create { size; _ } | Modify { size; _ } -> size
  | Delete _ -> 0

type stats = {
  operations : int;
  creates : int;
  deletes : int;
  modifies : int;
  total_bytes_written : int;
  days : int;
}

let stats ops =
  let creates = ref 0 and deletes = ref 0 and modifies = ref 0 in
  let bytes = ref 0 and last_day = ref 0 in
  Array.iter
    (fun op ->
      (match op with
      | Create _ -> incr creates
      | Delete _ -> incr deletes
      | Modify _ -> incr modifies);
      bytes := !bytes + bytes_written op;
      if day_of op > !last_day then last_day := day_of op)
    ops;
  {
    operations = Array.length ops;
    creates = !creates;
    deletes = !deletes;
    modifies = !modifies;
    total_bytes_written = !bytes;
    days = !last_day + 1;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>%d operations over %d days: %d creates, %d deletes, %d modifies;@ %a written@]"
    s.operations s.days s.creates s.deletes s.modifies Util.Units.pp_bytes
    s.total_bytes_written

let sort_by_time ops =
  (* stable: preserve generation order within equal timestamps *)
  let indexed = Array.mapi (fun i op -> (time_of op, i, op)) ops in
  Array.sort
    (fun (t1, i1, _) (t2, i2, _) -> if t1 <> t2 then compare t1 t2 else compare i1 i2)
    indexed;
  Array.iteri (fun i (_, _, op) -> ops.(i) <- op) indexed

let check_well_formed ops =
  let live = Hashtbl.create 1024 in
  let exception Bad of string in
  try
    let last_time = ref neg_infinity in
    Array.iteri
      (fun i op ->
        let time = time_of op in
        if time < !last_time then
          raise (Bad (Fmt.str "op %d: time goes backwards (%.1f < %.1f)" i time !last_time));
        last_time := time;
        match op with
        | Create { ino; size; _ } ->
            if size < 0 then raise (Bad (Fmt.str "op %d: negative size" i));
            if Hashtbl.mem live ino then
              raise (Bad (Fmt.str "op %d: create of live inode %d" i ino));
            Hashtbl.replace live ino ()
        | Delete { ino; _ } ->
            if not (Hashtbl.mem live ino) then
              raise (Bad (Fmt.str "op %d: delete of dead inode %d" i ino));
            Hashtbl.remove live ino
        | Modify { ino; size; _ } ->
            if size < 0 then raise (Bad (Fmt.str "op %d: negative size" i));
            if not (Hashtbl.mem live ino) then
              raise (Bad (Fmt.str "op %d: modify of dead inode %d" i ino)))
      ops;
    Ok ()
  with Bad msg -> Error msg
