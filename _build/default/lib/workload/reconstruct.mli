(** The paper's workload-reconstruction heuristics (Section 3.1).

    Given only the nightly snapshots (inode number, size, ctime — no
    pathnames, no intra-day activity), rebuild a replayable workload:

    - a file present in a snapshot but not its predecessor was {e
      created}, at its recorded ctime;
    - a file whose size or ctime changed between snapshots was {e
      modified} — modelled as delete + rewrite at the new ctime (files
      are seldom updated in place);
    - a file that disappeared was {e deleted} at a {e random} time within
      the day's span of other activity (snapshots say nothing about when);
    - the short-lived files invisible to snapshots are re-injected from
      NFS trace days: each workload day borrows one randomly chosen trace
      day, places its files in the cylinder groups with the most changes
      that day, and time-shifts each directory's operations to the peak
      activity period of the group it joins.

    The result deliberately inherits the paper's information loss: it
    approximates the ground truth, and comparing the two replays is the
    Figure 1 experiment. *)

val run :
  Ffs.Params.t ->
  seed:int ->
  snapshots:Snapshot.t array ->
  nfs:Nfs_source.day_trace array ->
  Op.t array
(** Time-sorted, well-formed workload. Deterministic in [seed]. *)
