(** The synthetic "original file system" activity stream.

    Substitutes for the Harvard nightly snapshots' underlying activity
    (which we do not have): a research-group home-directory file system
    driven from 9% to 70–90% utilization over ten months, with

    - long-lived files (lognormal body, Pareto tail) created in a fixed
      set of directories with Zipf popularity;
    - modifications modelled as delete+rewrite (files are rarely updated
      in place, per Ousterhout85), biased toward recent and larger files;
    - deletions sized to track a target utilization trajectory, biased
      toward young files (most files die young, per Baker91);
    - same-day create+delete pairs ("short-lived files", the traffic the
      paper recovers from NFS traces), emitted in bursts.

    The stream is the {e ground truth}: replaying it directly gives the
    "Real" curve of Figure 1, while {!Reconstruct} degrades it through
    the paper's snapshot heuristics to give the "Simulated" curve. *)

type profile = {
  seed : int;
  days : int;
  directories : int;
  base_creates_per_day : float;
  modify_fraction : float;  (** modifies per create *)
  short_pairs_per_day : float;
  long_size : Util.Dist.t;
  short_size : Util.Dist.t;
  utilization_start : float;
  utilization_ramp_days : int;
  utilization_lo : float;
  utilization_hi : float;
}

val default : Ffs.Params.t -> profile
(** Calibrated against the paper's workload description: 300 days,
    roughly 800 k operations writing tens of gigabytes, utilization 9%
    at the start and 70–90% for most of the run. *)

val scaled : Ffs.Params.t -> days:int -> profile
(** A proportionally lighter profile for short runs and tests. *)

type t = {
  profile : profile;
  ops : Op.t array;  (** time-sorted, well-formed *)
  utilization_targets : float array;  (** per day *)
}

val generate : Ffs.Params.t -> profile -> t
(** Deterministic in [profile.seed]. *)
