type profile = {
  seed : int;
  days : int;
  directories : int;
  base_creates_per_day : float;
  modify_fraction : float;
  short_pairs_per_day : float;
  long_size : Util.Dist.t;
  short_size : Util.Dist.t;
  utilization_start : float;
  utilization_ramp_days : int;
  utilization_lo : float;
  utilization_hi : float;
}

let long_size_dist =
  (* lognormal body of small files with a Pareto tail of big ones *)
  Util.Dist.mixture
    [|
      (Util.Dist.lognormal_of_median ~median:6144.0 ~sigma:1.5, 0.93);
      (Util.Dist.truncate ~lo:65536.0 ~hi:16777216.0 (Util.Dist.pareto ~xm:131072.0 ~alpha:1.25), 0.07);
    |]
  |> Util.Dist.truncate ~lo:512.0 ~hi:16777216.0

let short_size_dist =
  (* mostly tiny lock/spool files, some large temporaries *)
  Util.Dist.mixture
    [|
      (Util.Dist.lognormal_of_median ~median:2048.0 ~sigma:1.4, 0.75);
      (Util.Dist.uniform ~lo:65536.0 ~hi:786432.0, 0.25);
    |]
  |> Util.Dist.truncate ~lo:256.0 ~hi:4194304.0

let default _params =
  {
    seed = 960117;
    days = 300;
    directories = 96;
    base_creates_per_day = 70.0;
    modify_fraction = 0.35;
    short_pairs_per_day = 1350.0;
    long_size = long_size_dist;
    short_size = short_size_dist;
    utilization_start = 0.09;
    utilization_ramp_days = 50;
    utilization_lo = 0.70;
    utilization_hi = 0.90;
  }

let scaled params ~days =
  let base = default params in
  if days >= base.days then { base with days }
  else begin
    (* a short run must still reach the paper's 70-90% plateau: size the
       creation rate so the tripled ramp-phase rate fills the disk to
       the plateau within the (shortened) ramp *)
    let ramp_days = max 3 (days / 6) in
    let mean_size = Util.Dist.mean_estimate base.long_size in
    let data = float_of_int (Ffs.Params.data_bytes params) in
    let target = 0.78 *. data in
    let base_creates = target /. (2.5 *. float_of_int ramp_days *. mean_size) in
    (* short-lived churn must also fit the file system: the paper rate
       assumes the 502 MB disk *)
    let data_ratio = Float.min 1.0 (data /. (485.0 *. 1048576.0)) in
    {
      base with
      days;
      utilization_ramp_days = ramp_days;
      base_creates_per_day = Float.max 20.0 base_creates;
      short_pairs_per_day = Float.max 40.0 (base.short_pairs_per_day *. data_ratio);
      (* no single file may dominate a small file system *)
      long_size = Util.Dist.truncate ~lo:512.0 ~hi:(data /. 8.0) base.long_size;
    }
  end

type t = {
  profile : profile;
  ops : Op.t array;
  utilization_targets : float array;
}

(* --- live-file bookkeeping ---------------------------------------------- *)

type live_file = {
  ino : int;
  dir : int;
  mutable size : int;
  mutable frags : int;  (* space charge, fragments *)
  created : float;
  mutable last_op : float;
}

type live_set = {
  files : live_file Util.Vec.t;
  pos : (int, int) Hashtbl.t;  (* ino -> index in [files] *)
}

let live_create () = { files = Util.Vec.create (); pos = Hashtbl.create 4096 }
let live_count ls = Util.Vec.length ls.files

let live_add ls f =
  Util.Vec.push ls.files f;
  Hashtbl.replace ls.pos f.ino (Util.Vec.length ls.files - 1)

let live_remove ls ino =
  match Hashtbl.find_opt ls.pos ino with
  | None -> invalid_arg "live_remove: not live"
  | Some i ->
      let last_index = Util.Vec.length ls.files - 1 in
      let last = Util.Vec.get ls.files last_index in
      ignore (Util.Vec.pop ls.files);
      Hashtbl.remove ls.pos ino;
      if i <> last_index then begin
        Util.Vec.set ls.files i last;
        Hashtbl.replace ls.pos last.ino i
      end

let live_sample ls rng =
  if live_count ls = 0 then None
  else Some (Util.Vec.get ls.files (Util.Prng.int rng (live_count ls)))

(* --- space accounting ----------------------------------------------------- *)

(* fragments a file of [size] bytes charges, including indirect blocks *)
let frag_charge params size =
  let full, tail = Ffs.Params.blocks_of_size params size in
  let fpb = params.Ffs.Params.frags_per_block in
  let data_blocks = full in
  let indirect =
    if data_blocks <= params.Ffs.Params.ndaddr then 0
    else begin
      let beyond = data_blocks - params.Ffs.Params.ndaddr in
      let singles = (beyond + params.Ffs.Params.nindir - 1) / params.Ffs.Params.nindir in
      if beyond > params.Ffs.Params.nindir then singles + 1 else singles
    end
  in
  (full * fpb) + tail + (indirect * fpb)

(* --- utilization trajectory ------------------------------------------------ *)

let utilization_targets profile rng =
  let targets = Array.make profile.days profile.utilization_start in
  let mid = (profile.utilization_lo +. profile.utilization_hi) /. 2.0 in
  for day = 1 to profile.days - 1 do
    let prev = targets.(day - 1) in
    let next =
      if day < profile.utilization_ramp_days then
        profile.utilization_start
        +. ((mid -. profile.utilization_start)
            *. float_of_int day
            /. float_of_int profile.utilization_ramp_days)
      else begin
        let step = Util.Prng.gaussian rng *. 0.012 in
        let cleanup = if Util.Prng.chance rng 0.03 then -0.04 else 0.0 in
        let burst = if Util.Prng.chance rng 0.02 then 0.03 else 0.0 in
        let v = prev +. step +. cleanup +. burst in
        Float.min profile.utilization_hi (Float.max profile.utilization_lo v)
      end
    in
    targets.(day) <- next
  done;
  targets

(* --- generation -------------------------------------------------------------- *)

let generate params profile =
  let rng = Util.Prng.create ~seed:profile.seed in
  let size_rng = Util.Prng.split rng in
  let time_rng = Util.Prng.split rng in
  let dir_zipf = Util.Dist.zipf ~n:profile.directories ~s:0.9 in
  let pool = Inode_pool.create params in
  let ncg = params.Ffs.Params.ncg in
  (* directories round-robin over the groups, like dirpref on an empty
     file system *)
  let dir_cg = Array.init profile.directories (fun i -> i mod ncg) in
  let live = live_create () in
  let ops = Util.Vec.create () in
  let data_frags = float_of_int (params.Ffs.Params.ncg * Ffs.Params.data_blocks_per_group params
                                 * params.Ffs.Params.frags_per_block) in
  let used_frags = ref 0 in
  let targets = utilization_targets profile rng in
  let day_seconds = Op.seconds_per_day in
  (* a timestamp inside the working day, bell-shaped around 14:30 *)
  let worktime day =
    let hours = 14.5 +. (Util.Prng.gaussian time_rng *. 3.0) in
    let hours = Float.min 23.5 (Float.max 0.5 hours) in
    (float_of_int day *. day_seconds) +. (hours *. 3600.0)
  in
  let pick_dir () = int_of_float (Util.Dist.sample dir_zipf rng) - 1 in
  let fresh_size dist = int_of_float (Util.Dist.sample dist size_rng) in
  let emit_create ~dir ~size ~time =
    match Inode_pool.alloc pool ~cg:dir_cg.(dir) with
    | None -> None
    | Some ino ->
        let f = { ino; dir; size; frags = frag_charge params size; created = time; last_op = time } in
        live_add live f;
        used_frags := !used_frags + f.frags;
        Util.Vec.push ops (Op.Create { ino; size; time });
        Some f
  in
  (* inode numbers freed during a day only become reusable at the next
     day boundary: a same-day reuse could otherwise sort its create
     before the previous owner's delete *)
  let freed_today = ref [] in
  let emit_delete f ~time =
    let time = Float.max time (f.last_op +. 1.0) in
    used_frags := !used_frags - f.frags;
    live_remove live f.ino;
    freed_today := f.ino :: !freed_today;
    Util.Vec.push ops (Op.Delete { ino = f.ino; time })
  in
  let emit_modify f ~size ~time =
    let time = Float.max time (f.last_op +. 1.0) in
    used_frags := !used_frags - f.frags;
    f.size <- size;
    f.frags <- frag_charge params size;
    f.last_op <- time;
    used_frags := !used_frags + f.frags;
    Util.Vec.push ops (Op.Modify { ino = f.ino; size; time })
  in
  (* victim selection: sample a few candidates, prefer the youngest
     (deletes) or the largest (modifies) *)
  let sample_candidates n =
    let rec loop i acc = if i = 0 then acc else loop (i - 1) (live_sample live rng :: acc) in
    List.filter_map Fun.id (loop n [])
  in
  let young_victim () =
    match sample_candidates 6 with
    | [] -> None
    | c :: cs ->
        if Util.Prng.chance rng 0.65 then
          Some (List.fold_left (fun a b -> if b.created > a.created then b else a) c cs)
        else Some c
  in
  let modify_victim () =
    match sample_candidates 4 with
    | [] -> None
    | c :: cs ->
        if Util.Prng.chance rng 0.5 then
          Some (List.fold_left (fun a b -> if b.size > a.size then b else a) c cs)
        else Some c
  in
  for day = 0 to profile.days - 1 do
    let noise mean = Float.max 0.0 (mean *. (1.0 +. (Util.Prng.gaussian rng *. 0.25))) in
    (* activity is heavier while the file system fills (the group moved
       their data in); afterwards creation settles to a steady trickle *)
    let ramp_boost = if day < profile.utilization_ramp_days then 3.0 else 1.0 in
    let creates_n = int_of_float (noise (profile.base_creates_per_day *. ramp_boost)) in
    let modifies_n = int_of_float (float_of_int creates_n *. profile.modify_fraction) in
    let shorts_n = int_of_float (noise profile.short_pairs_per_day) in
    for _ = 1 to creates_n do
      let dir = pick_dir () in
      let size = fresh_size profile.long_size in
      match emit_create ~dir ~size ~time:(worktime day) with
      | None -> ()
      | Some f ->
          (* some files are rewritten a few times on their first day
             (edit-save cycles) — activity the nightly snapshots cannot
             see, so the reconstructed workload will lack it *)
          if Util.Prng.chance rng 0.2 then
            for _ = 1 to 1 + Util.Prng.int rng 3 do
              let scale = exp (Util.Prng.gaussian size_rng *. 0.3) in
              let size = max 512 (int_of_float (float_of_int f.size *. scale)) in
              emit_modify f ~size ~time:(f.last_op +. (60.0 +. Util.Prng.float time_rng 7200.0))
            done
    done;
    for _ = 1 to modifies_n do
      match modify_victim () with
      | Some f ->
          let scale = exp (Util.Prng.gaussian size_rng *. 0.4) in
          let size = max 512 (int_of_float (float_of_int f.size *. scale)) in
          emit_modify f ~size ~time:(worktime day)
      | None -> ()
    done;
    (* deletions: bring usage back toward the day's target *)
    let target_frags = targets.(day) *. data_frags in
    let give_up = ref 0 in
    while float_of_int !used_frags > target_frags && live_count live > 0 && !give_up < 100000 do
      incr give_up;
      match young_victim () with
      | Some f -> emit_delete f ~time:(worktime day)
      | None -> give_up := max_int
    done;
    (* short-lived create+delete pairs, in bursts *)
    let bursts = 3 + Util.Prng.int rng 4 in
    let burst_centers =
      Array.init bursts (fun _ ->
          (float_of_int day *. day_seconds) +. (3600.0 *. (8.0 +. Util.Prng.float time_rng 12.0)))
    in
    for _ = 1 to shorts_n do
      let dir = pick_dir () in
      let size = fresh_size profile.short_size in
      let center = burst_centers.(Util.Prng.int rng bursts) in
      let time = center +. (Util.Prng.gaussian time_rng *. 1200.0) in
      let time =
        Float.max (float_of_int day *. day_seconds)
          (Float.min (((float_of_int day +. 1.0) *. day_seconds) -. 120.0) time)
      in
      match emit_create ~dir ~size ~time with
      | None -> ()
      | Some f ->
          let lifetime = -1200.0 *. log (1.0 -. Util.Prng.unit_float time_rng) in
          let time =
            Float.min (((float_of_int day +. 1.0) *. day_seconds) -. 1.0) (time +. 30.0 +. lifetime)
          in
          emit_delete f ~time
    done;
    List.iter (Inode_pool.free pool) !freed_today;
    freed_today := []
  done;
  let ops = Util.Vec.to_array ops in
  Op.sort_by_time ops;
  { profile; ops; utilization_targets = targets }
