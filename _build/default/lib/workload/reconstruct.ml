let day_seconds = Op.seconds_per_day

(* Allocate unused inode numbers for a day's injected short-lived files.
   A slot qualifies if no snapshot-visible or already-injected operation
   touches it that day. A per-group cursor keeps the scan linear in the
   number of allocations plus the density of used low slots. *)
module Day_pool = struct
  type t = {
    ipg : int;
    ncg : int;
    cursors : int array;
    blocked : (int, unit) Hashtbl.t;  (* inos unavailable today *)
  }

  let create params ~blocked =
    {
      ipg = Ffs.Params.inodes_per_group params;
      ncg = params.Ffs.Params.ncg;
      cursors = Array.make params.Ffs.Params.ncg 0;
      blocked;
    }

  let alloc t ~cg =
    let rec try_cg attempt =
      if attempt >= t.ncg then None
      else begin
        let c = (cg + attempt) mod t.ncg in
        let rec scan slot =
          if slot >= t.ipg then None
          else begin
            let ino = (c * t.ipg) + slot in
            if Hashtbl.mem t.blocked ino then scan (slot + 1)
            else begin
              t.cursors.(c) <- slot + 1;
              Hashtbl.replace t.blocked ino ();
              Some ino
            end
          end
        in
        match scan t.cursors.(c) with Some _ as r -> r | None -> try_cg (attempt + 1)
      end
    in
    try_cg 0
end

let run params ~seed ~snapshots ~nfs =
  assert (Array.length snapshots > 0);
  let rng = Util.Prng.create ~seed in
  let ncg = params.Ffs.Params.ncg in
  let ipg = Ffs.Params.inodes_per_group params in
  let cg_of_ino ino = ino / ipg in
  let ops = Util.Vec.create () in
  let empty = { Snapshot.day = -1; files = [||] } in
  let ndays = Array.length snapshots in
  for d = 0 to ndays - 1 do
    let prev = if d = 0 then empty else snapshots.(d - 1) in
    let cur = snapshots.(d) in
    let day_start = float_of_int d *. day_seconds in
    let day_end = day_start +. day_seconds in
    let clamp time = Float.max (day_start +. 1.0) (Float.min (day_end -. 2.0) time) in
    let day_ops = Util.Vec.create () in
    let blocked : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
    (* every inode live at the start or end of the day is off-limits for
       injected files *)
    Array.iter (fun (r : Snapshot.file_record) -> Hashtbl.replace blocked r.ino ()) prev.files;
    Array.iter (fun (r : Snapshot.file_record) -> Hashtbl.replace blocked r.ino ()) cur.files;
    (* creates and modifies, from the snapshot diff *)
    Array.iter
      (fun (r : Snapshot.file_record) ->
        match Snapshot.find prev r.ino with
        | None ->
            Util.Vec.push day_ops (Op.Create { ino = r.ino; size = r.size; time = clamp r.ctime })
        | Some old ->
            if old.size <> r.size || old.ctime <> r.ctime then
              Util.Vec.push day_ops
                (Op.Modify { ino = r.ino; size = r.size; time = clamp r.ctime }))
      cur.files;
    (* the span of known activity, for placing the guessed delete times *)
    let lo, hi =
      Util.Vec.fold_left
        (fun (lo, hi) op -> (Float.min lo (Op.time_of op), Float.max hi (Op.time_of op)))
        (infinity, neg_infinity) day_ops
    in
    let lo, hi =
      if lo > hi then (day_start +. (8.0 *. 3600.0), day_start +. (20.0 *. 3600.0)) else (lo, hi)
    in
    (* deletes: in the previous snapshot, gone now; time unknown *)
    Array.iter
      (fun (r : Snapshot.file_record) ->
        if Snapshot.find cur r.ino = None then begin
          let time = clamp (lo +. Util.Prng.float rng (Float.max 1.0 (hi -. lo))) in
          Util.Vec.push day_ops (Op.Delete { ino = r.ino; time })
        end)
      prev.files;
    (* --- NFS short-lived injection --------------------------------- *)
    if Array.length nfs > 0 then begin
      let trace = nfs.(Util.Prng.int rng (Array.length nfs)) in
      (* rank groups by today's change count *)
      let changes = Array.make ncg 0 in
      let time_sum = Array.make ncg 0.0 in
      Util.Vec.iter
        (fun op ->
          let c = cg_of_ino (Op.ino_of op) in
          changes.(c) <- changes.(c) + 1;
          time_sum.(c) <- time_sum.(c) +. Op.time_of op)
        day_ops;
      let ranked =
        Array.init ncg Fun.id |> Array.to_list
        |> List.filter (fun c -> changes.(c) > 0)
        |> List.sort (fun a b -> compare changes.(b) changes.(a))
        |> Array.of_list
      in
      let ranked = if Array.length ranked = 0 then [| 0 |] else ranked in
      let peak c =
        if changes.(c) = 0 then day_start +. (14.0 *. 3600.0)
        else time_sum.(c) /. float_of_int changes.(c)
      in
      (* rank trace directories by their pair counts *)
      let tag_count : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let tag_offset_sum : (int, float) Hashtbl.t = Hashtbl.create 16 in
      Array.iter
        (fun (p : Nfs_source.pair) ->
          Hashtbl.replace tag_count p.dir_tag
            (1 + Option.value ~default:0 (Hashtbl.find_opt tag_count p.dir_tag));
          Hashtbl.replace tag_offset_sum p.dir_tag
            (p.offset +. Option.value ~default:0.0 (Hashtbl.find_opt tag_offset_sum p.dir_tag)))
        trace;
      let tags =
        Hashtbl.fold (fun tag count acc -> (tag, count) :: acc) tag_count []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.map fst
      in
      let tag_target : (int, int * float) Hashtbl.t = Hashtbl.create 16 in
      List.iteri
        (fun rank tag ->
          let cg = ranked.(rank mod Array.length ranked) in
          let mean_offset =
            Hashtbl.find tag_offset_sum tag /. float_of_int (Hashtbl.find tag_count tag)
          in
          (* shift the tag's operations so their mean lands on the
             target group's activity peak *)
          let shift = peak cg -. (day_start +. mean_offset) in
          Hashtbl.replace tag_target tag (cg, shift))
        tags;
      let day_pool = Day_pool.create params ~blocked in
      Array.iter
        (fun (p : Nfs_source.pair) ->
          let cg, shift = Hashtbl.find tag_target p.dir_tag in
          match Day_pool.alloc day_pool ~cg with
          | None -> ()
          | Some ino ->
              let create_time = clamp (day_start +. p.offset +. shift) in
              let delete_time =
                Float.max (create_time +. 1.0) (Float.min (day_end -. 1.0) (create_time +. p.lifetime))
              in
              Util.Vec.push day_ops (Op.Create { ino; size = p.size; time = create_time });
              Util.Vec.push day_ops (Op.Delete { ino; time = delete_time }))
        trace
    end;
    Util.Vec.iter (fun op -> Util.Vec.push ops op) day_ops
  done;
  let ops = Util.Vec.to_array ops in
  Op.sort_by_time ops;
  ops
