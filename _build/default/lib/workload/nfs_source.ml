type pair = { offset : float; lifetime : float; size : int; dir_tag : int }
type day_trace = pair array

let size_dist =
  Util.Dist.mixture
    [|
      (Util.Dist.lognormal_of_median ~median:2048.0 ~sigma:1.4, 0.80);
      (Util.Dist.uniform ~lo:65536.0 ~hi:786432.0, 0.20);
    |]
  |> Util.Dist.truncate ~lo:256.0 ~hi:4194304.0

let generate ~seed ~trace_days ~pairs_per_day =
  let rng = Util.Prng.create ~seed in
  let one_day () =
    let n =
      int_of_float
        (Float.max 1.0 (pairs_per_day *. (1.0 +. (Util.Prng.gaussian rng *. 0.3))))
    in
    let ndirs = 4 + Util.Prng.int rng 8 in
    (* activity bursts through the working day *)
    let bursts = 3 + Util.Prng.int rng 4 in
    let centers =
      Array.init bursts (fun _ -> 3600.0 *. (8.0 +. Util.Prng.float rng 12.0))
    in
    let dir_zipf = Util.Dist.zipf ~n:ndirs ~s:1.1 in
    Array.init n (fun _ ->
        let center = centers.(Util.Prng.int rng bursts) in
        let offset =
          Float.max 0.0 (Float.min 85800.0 (center +. (Util.Prng.gaussian rng *. 1500.0)))
        in
        let lifetime = 30.0 -. (1500.0 *. log (1.0 -. Util.Prng.unit_float rng)) in
        let lifetime = Float.min (86300.0 -. offset) lifetime in
        {
          offset;
          lifetime = Float.max 1.0 lifetime;
          size = int_of_float (Util.Dist.sample size_dist rng);
          dir_tag = int_of_float (Util.Dist.sample dir_zipf rng) - 1;
        })
  in
  Array.init trace_days (fun _ -> one_day ())

let total_pairs traces = Array.fold_left (fun acc day -> acc + Array.length day) 0 traces
