type t = {
  fs : Log_fs.t;
  drive : Disk.Drive.t;
  host_gap : float;
  mutable clock : float;
}

let create ~fs ~drive ?(host_gap = 0.7e-3) () = { fs; drive; host_gap; clock = 0.0 }
let clock t = t.clock

let reset t =
  t.clock <- 0.0;
  Disk.Drive.reset t.drive

let sector_bytes t =
  (Disk.Drive.config t.drive).Disk.Drive.geometry.Disk.Geometry.sector_bytes

let read_file t ~ino =
  let blocks = Log_fs.file_blocks t.fs ~ino in
  let spb = Log_fs.block_bytes t.fs / sector_bytes t in
  let cap_blocks = Disk.Drive.max_transfer_sectors t.drive / spb in
  let issue addr len =
    let lba = Log_fs.lba_of_block t.fs ~sector_bytes:(sector_bytes t) addr in
    t.clock <-
      Disk.Drive.service t.drive ~now:(t.clock +. t.host_gap) Disk.Drive.Read ~lba
        ~nsectors:(len * spb)
  in
  let start = ref 0 in
  let n = Array.length blocks in
  while !start < n do
    (* maximal consecutive run from !start, capped at the transfer size *)
    let len = ref 1 in
    while
      !start + !len < n
      && blocks.(!start + !len) = blocks.(!start + !len - 1) + 1
      && !len < cap_blocks
    do
      incr len
    done;
    issue blocks.(!start) !len;
    start := !start + !len
  done

let elapsed_of t action =
  let before = t.clock in
  action ();
  t.clock -. before
