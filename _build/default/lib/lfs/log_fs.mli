(** A log-structured file system substrate.

    The paper's future work (Section 6) singles out file systems "where
    the idle time between file operations can affect the behavior of the
    file system itself — an example of this is the timing of cleaner
    execution on a log-structured file system". This module provides
    that substrate: a Sprite-LFS-style log (Rosenblum & Ousterhout 1992,
    simplified along the lines of BSD-LFS, Seltzer 1993) that the same
    aging workloads can be replayed against.

    The disk is an array of fixed-size segments. All writes append to
    the head of the log; deleting or rewriting a file turns its old
    blocks into dead space tracked by a per-segment usage table. A
    {e cleaner} reclaims fragmented segments by copying their live
    blocks (grouped by file) to the log head. Cleaning runs in the
    foreground when clean segments run low and opportunistically during
    idle periods — making the replay's inter-operation times matter,
    exactly the paper's point.

    Files are block-granular (no fragments): a deliberate simplification
    recorded in DESIGN.md; the layout metric and write-cost accounting
    do not depend on sub-block packing. *)

type t

type config = {
  segment_blocks : int;  (** blocks per segment (default 64 = 512 KB) *)
  low_water : int;  (** start foreground cleaning below this many clean segments *)
  high_water : int;  (** clean up to this many clean segments *)
  reserve : int;  (** segments the cleaner keeps for itself; writes fail beyond *)
  idle_threshold : float;  (** seconds of idle time that trigger background cleaning *)
  policy : [ `Greedy | `Cost_benefit ];
      (** victim selection: least-utilized, or Rosenblum's
          benefit-to-cost ratio [(1-u)*age/(1+u)] *)
}

type stats = {
  mutable user_blocks_written : int;
  mutable cleaner_blocks_copied : int;
  mutable segments_cleaned : int;
  mutable idle_cleanings : int;
  mutable foreground_cleanings : int;
}

exception Out_of_space

val default_config : config
val create : ?config:config -> block_bytes:int -> size_bytes:int -> unit -> t
val config : t -> config
val stats : t -> stats

val segment_count : t -> int
val clean_segments : t -> int
val block_bytes : t -> int

val set_time : t -> float -> unit
(** Advance the simulated clock. A gap larger than
    [config.idle_threshold] since the previous operation lets the
    cleaner run in the background first. *)

val create_file : t -> ino:int -> size:int -> unit
(** Append a new file to the log. Raises [Invalid_argument] if [ino] is
    live, [Out_of_space] if cleaning cannot make room. *)

val delete_file : t -> ino:int -> unit
val rewrite_file : t -> ino:int -> size:int -> unit
(** Delete + append, like the aging workload's modify. *)

val file_exists : t -> ino:int -> bool
val file_blocks : t -> ino:int -> int array
(** Disk block addresses of the file, in logical order. *)

val file_count : t -> int
val iter_files : t -> (ino:int -> blocks:int array -> unit) -> unit

val utilization : t -> float
(** Live blocks / total blocks. *)

val write_amplification : t -> float
(** (user + cleaner blocks written) / user blocks written; 1.0 until the
    cleaner has to run. *)

val layout_score : t -> float
(** The paper's aggregate layout metric applied to the log: the fraction
    of file blocks whose disk address immediately follows the previous
    block of the same file. *)

val lba_of_block : t -> sector_bytes:int -> int -> int
(** Map a block address to a disk LBA, for timing I/O against
    {!Disk.Drive}. *)

val check_invariants : t -> unit
(** Usage table vs. ownership map consistency; for tests. *)
