type config = {
  segment_blocks : int;
  low_water : int;
  high_water : int;
  reserve : int;
  idle_threshold : float;
  policy : [ `Greedy | `Cost_benefit ];
}

type stats = {
  mutable user_blocks_written : int;
  mutable cleaner_blocks_copied : int;
  mutable segments_cleaned : int;
  mutable idle_cleanings : int;
  mutable foreground_cleanings : int;
}

exception Out_of_space

let default_config =
  {
    segment_blocks = 64;
    low_water = 4;
    high_water = 10;
    reserve = 2;
    idle_threshold = 1800.0;
    policy = `Cost_benefit;
  }

type t = {
  cfg : config;
  block_bytes : int;
  nsegments : int;
  usage : int array;  (* live blocks per segment *)
  seg_time : float array;  (* last write time per segment (for cost-benefit age) *)
  owner : (int * int) option array;  (* disk block -> (ino, lbn) *)
  files : (int, int array) Hashtbl.t;  (* ino -> block addresses *)
  mutable clean : int list;  (* clean segment indices (stack) *)
  mutable nclean : int;
  mutable head_segment : int;
  mutable head_offset : int;  (* next free block slot within the head segment *)
  mutable clock : float;
  mutable last_op_time : float;
  mutable cleaning : bool;  (* re-entrancy guard *)
  stats : stats;
}

let create ?(config = default_config) ~block_bytes ~size_bytes () =
  let seg_bytes = config.segment_blocks * block_bytes in
  let nsegments = size_bytes / seg_bytes in
  if nsegments < config.high_water + config.reserve + 2 then
    invalid_arg "Log_fs.create: too few segments";
  let nblocks = nsegments * config.segment_blocks in
  let clean = List.init (nsegments - 1) (fun i -> nsegments - 1 - i) in
  {
    cfg = config;
    block_bytes;
    nsegments;
    usage = Array.make nsegments 0;
    seg_time = Array.make nsegments 0.0;
    owner = Array.make nblocks None;
    files = Hashtbl.create 1024;
    clean;
    nclean = nsegments - 1;
    head_segment = 0;
    head_offset = 0;
    clock = 0.0;
    last_op_time = 0.0;
    cleaning = false;
    stats =
      {
        user_blocks_written = 0;
        cleaner_blocks_copied = 0;
        segments_cleaned = 0;
        idle_cleanings = 0;
        foreground_cleanings = 0;
      };
  }

let config t = t.cfg
let stats t = t.stats
let segment_count t = t.nsegments
let clean_segments t = t.nclean
let block_bytes t = t.block_bytes
let segment_of t addr = addr / t.cfg.segment_blocks

let file_exists t ~ino = Hashtbl.mem t.files ino

let file_blocks t ~ino =
  match Hashtbl.find_opt t.files ino with
  | Some blocks -> Array.copy blocks
  | None -> raise Not_found

let file_count t = Hashtbl.length t.files
let iter_files t f = Hashtbl.iter (fun ino blocks -> f ~ino ~blocks) t.files

let live_blocks t = Array.fold_left ( + ) 0 t.usage

let utilization t =
  float_of_int (live_blocks t) /. float_of_int (t.nsegments * t.cfg.segment_blocks)

let write_amplification t =
  let user = t.stats.user_blocks_written in
  if user = 0 then 1.0
  else float_of_int (user + t.stats.cleaner_blocks_copied) /. float_of_int user

let lba_of_block t ~sector_bytes addr = addr * (t.block_bytes / sector_bytes)

(* --- the log head -------------------------------------------------------- *)

(* Kill a block: clear ownership and usage accounting. *)
let kill_block t addr =
  (match t.owner.(addr) with
  | Some _ -> ()
  | None -> invalid_arg "Log_fs: double kill");
  t.owner.(addr) <- None;
  let seg = segment_of t addr in
  t.usage.(seg) <- t.usage.(seg) - 1;
  assert (t.usage.(seg) >= 0);
  (* a fully dead, non-head segment is immediately reusable *)
  if t.usage.(seg) = 0 && seg <> t.head_segment then begin
    t.clean <- seg :: t.clean;
    t.nclean <- t.nclean + 1
  end

let rec advance_head t ~for_cleaner =
  match t.clean with
  | seg :: rest ->
      t.clean <- rest;
      t.nclean <- t.nclean - 1;
      (* the abandoned head may have become fully dead *)
      let old = t.head_segment in
      if t.usage.(old) = 0 && old <> seg then begin
        t.clean <- old :: t.clean;
        t.nclean <- t.nclean + 1
      end;
      t.head_segment <- seg;
      t.head_offset <- 0
  | [] ->
      if for_cleaner then raise Out_of_space
      else begin
        clean_until t ~target:1 ~foreground:true;
        if t.clean = [] then raise Out_of_space;
        advance_head t ~for_cleaner
      end

and append_block t ~ino ~lbn ~for_cleaner =
  (* the user may not consume the cleaner's reserve *)
  if (not for_cleaner) && t.nclean <= t.cfg.reserve && t.head_offset >= t.cfg.segment_blocks
  then begin
    clean_until t ~target:(t.cfg.reserve + 1) ~foreground:true;
    if t.nclean <= t.cfg.reserve then raise Out_of_space
  end;
  if t.head_offset >= t.cfg.segment_blocks then advance_head t ~for_cleaner;
  let addr = (t.head_segment * t.cfg.segment_blocks) + t.head_offset in
  t.head_offset <- t.head_offset + 1;
  assert (t.owner.(addr) = None);
  t.owner.(addr) <- Some (ino, lbn);
  t.usage.(t.head_segment) <- t.usage.(t.head_segment) + 1;
  t.seg_time.(t.head_segment) <- t.clock;
  addr

(* --- the cleaner ------------------------------------------------------------ *)

and pick_victim t =
  (* any non-clean, non-head segment with dead space *)
  let best = ref None in
  let consider seg score =
    match !best with
    | Some (_, best_score) when best_score >= score -> ()
    | Some _ | None -> best := Some (seg, score)
  in
  for seg = 0 to t.nsegments - 1 do
    if seg <> t.head_segment && t.usage.(seg) < t.cfg.segment_blocks then begin
      let is_clean = t.usage.(seg) = 0 in
      if not is_clean then begin
        let u = float_of_int t.usage.(seg) /. float_of_int t.cfg.segment_blocks in
        match t.cfg.policy with
        | `Greedy -> consider seg (1.0 -. u)
        | `Cost_benefit ->
            let age = Float.max 1.0 (t.clock -. t.seg_time.(seg)) in
            consider seg ((1.0 -. u) *. age /. (1.0 +. u))
      end
    end
  done;
  !best

and clean_segment t seg =
  (* collect the victim's live blocks, grouped by file and logical
     order so surviving files re-coalesce in the log *)
  let base = seg * t.cfg.segment_blocks in
  let live = ref [] in
  for off = t.cfg.segment_blocks - 1 downto 0 do
    match t.owner.(base + off) with
    | Some (ino, lbn) -> live := (ino, lbn, base + off) :: !live
    | None -> ()
  done;
  let live = List.sort compare !live in
  List.iter
    (fun (ino, lbn, addr) ->
      (* the relocation target is found first; only then is the old
         block killed (which may render the victim clean) *)
      let new_addr = append_block t ~ino ~lbn ~for_cleaner:true in
      t.owner.(addr) <- None;
      t.usage.(seg) <- t.usage.(seg) - 1;
      t.stats.cleaner_blocks_copied <- t.stats.cleaner_blocks_copied + 1;
      let blocks = Hashtbl.find t.files ino in
      blocks.(lbn) <- new_addr)
    live;
  assert (t.usage.(seg) = 0);
  t.clean <- seg :: t.clean;
  t.nclean <- t.nclean + 1;
  t.stats.segments_cleaned <- t.stats.segments_cleaned + 1

and clean_until t ~target ~foreground =
  if not t.cleaning then begin
    t.cleaning <- true;
    Fun.protect
      ~finally:(fun () -> t.cleaning <- false)
      (fun () ->
        if foreground then
          t.stats.foreground_cleanings <- t.stats.foreground_cleanings + 1
        else t.stats.idle_cleanings <- t.stats.idle_cleanings + 1;
        let progress = ref true in
        while t.nclean < target && !progress do
          match pick_victim t with
          | Some (seg, _) when t.usage.(seg) < t.cfg.segment_blocks ->
              (* cleaning a nearly-full segment into reserve space can
                 deadlock; require headroom for the copies *)
              let copies = t.usage.(seg) in
              let room =
                ((t.nclean * t.cfg.segment_blocks)
                + (t.cfg.segment_blocks - t.head_offset))
              in
              if room > copies then clean_segment t seg else progress := false
          | Some _ | None -> progress := false
        done)
  end

(* --- time ---------------------------------------------------------------------- *)

let set_time t time =
  let idle = time -. t.last_op_time in
  t.clock <- Float.max t.clock time;
  if idle >= t.cfg.idle_threshold && t.nclean < t.cfg.high_water then
    clean_until t ~target:t.cfg.high_water ~foreground:false;
  t.last_op_time <- time

(* --- file operations -------------------------------------------------------------- *)

let blocks_of_size t size = max 1 ((size + t.block_bytes - 1) / t.block_bytes)

let delete_file t ~ino =
  match Hashtbl.find_opt t.files ino with
  | None -> raise Not_found
  | Some blocks ->
      Array.iter (kill_block t) blocks;
      Hashtbl.remove t.files ino

let create_file t ~ino ~size =
  if Hashtbl.mem t.files ino then invalid_arg "Log_fs.create_file: inode live";
  if size < 0 then invalid_arg "Log_fs.create_file: negative size";
  let n = blocks_of_size t size in
  if t.nclean < t.cfg.low_water then
    clean_until t ~target:t.cfg.high_water ~foreground:true;
  let blocks = Array.make n 0 in
  (* register the file first so the cleaner can relocate already-written
     blocks if it runs mid-create *)
  Hashtbl.replace t.files ino blocks;
  (try
     for lbn = 0 to n - 1 do
       blocks.(lbn) <- append_block t ~ino ~lbn ~for_cleaner:false;
       t.stats.user_blocks_written <- t.stats.user_blocks_written + 1
     done
   with Out_of_space ->
     (* roll back the partial file *)
     let written = Array.to_list (Array.sub blocks 0 (Array.length blocks)) in
     List.iteri (fun lbn addr -> if t.owner.(addr) = Some (ino, lbn) then kill_block t addr) written;
     Hashtbl.remove t.files ino;
     raise Out_of_space)

let rewrite_file t ~ino ~size =
  delete_file t ~ino;
  create_file t ~ino ~size

(* --- metrics ------------------------------------------------------------------------ *)

let layout_score t =
  let optimal = ref 0 and counted = ref 0 in
  Hashtbl.iter
    (fun _ blocks ->
      let n = Array.length blocks in
      if n >= 2 then
        for i = 1 to n - 1 do
          incr counted;
          if blocks.(i) = blocks.(i - 1) + 1 then incr optimal
        done)
    t.files;
  if !counted = 0 then 1.0 else float_of_int !optimal /. float_of_int !counted

let check_invariants t =
  (* ownership map vs usage table *)
  let recount = Array.make t.nsegments 0 in
  Array.iteri
    (fun addr o ->
      match o with
      | Some (ino, lbn) ->
          recount.(segment_of t addr) <- recount.(segment_of t addr) + 1;
          let blocks =
            match Hashtbl.find_opt t.files ino with
            | Some b -> b
            | None -> Fmt.failwith "owner of block %d is dead inode %d" addr ino
          in
          if lbn >= Array.length blocks || blocks.(lbn) <> addr then
            Fmt.failwith "block %d ownership disagrees with inode %d" addr ino
      | None -> ())
    t.owner;
  Array.iteri
    (fun seg n ->
      if n <> t.usage.(seg) then
        Fmt.failwith "segment %d usage %d but %d live blocks" seg t.usage.(seg) n)
    recount;
  (* every file block must be owned *)
  Hashtbl.iter
    (fun ino blocks ->
      Array.iteri
        (fun lbn addr ->
          if t.owner.(addr) <> Some (ino, lbn) then
            Fmt.failwith "inode %d lbn %d at %d not owned" ino lbn addr)
        blocks)
    t.files;
  (* clean list consistency *)
  List.iter
    (fun seg ->
      if t.usage.(seg) <> 0 then Fmt.failwith "clean segment %d has live blocks" seg)
    t.clean;
  if List.length t.clean <> t.nclean then Fmt.failwith "clean count out of sync"
