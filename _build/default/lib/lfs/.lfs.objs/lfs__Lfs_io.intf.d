lib/lfs/lfs_io.mli: Disk Log_fs
