lib/lfs/replay.ml: Array Log_fs Workload
