lib/lfs/lfs_io.ml: Array Disk Log_fs
