lib/lfs/log_fs.ml: Array Float Fmt Fun Hashtbl List
