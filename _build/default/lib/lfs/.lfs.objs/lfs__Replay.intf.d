lib/lfs/replay.mli: Log_fs Workload
