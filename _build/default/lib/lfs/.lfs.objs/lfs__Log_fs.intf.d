lib/lfs/log_fs.mli:
