(** Timed reads from the log against the disk model.

    Mirrors {!Ffs.Io_engine}'s data path: extents of physically
    consecutive blocks are coalesced up to the drive's transfer limit,
    and each request is issued a host gap after the previous completion.
    LFS metadata (the inode map) is assumed cached — BSD-LFS keeps the
    ifile hot — so, unlike the FFS engine, no per-file metadata reads
    are charged; write timing is not modelled (the log's write
    performance is measured by {!Log_fs.write_amplification}, the
    cleaner's tax, rather than by request latency). *)

type t

val create : fs:Log_fs.t -> drive:Disk.Drive.t -> ?host_gap:float -> unit -> t
val clock : t -> float
val reset : t -> unit

val read_file : t -> ino:int -> unit
(** Raises [Not_found] for a dead inode. *)

val elapsed_of : t -> (unit -> unit) -> float
