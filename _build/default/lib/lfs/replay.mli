(** Aging replay against the log-structured substrate.

    Replays the same {!Workload.Op} streams the FFS replayer consumes.
    There is no cylinder-group placement (a log has no groups); inode
    numbers are used directly. Because {!Log_fs.set_time} is driven from
    the operation timestamps, idle gaps in the workload give the cleaner
    its chance to run — the behaviour the paper's future work wants
    aging to capture. *)

type result = {
  fs : Log_fs.t;
  daily_scores : float array;
  daily_utilization : float array;
  daily_write_amplification : float array;
  skipped_ops : int;
}

val run :
  ?config:Log_fs.config ->
  block_bytes:int ->
  size_bytes:int ->
  days:int ->
  Workload.Op.t array ->
  result
