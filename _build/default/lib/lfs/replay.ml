type result = {
  fs : Log_fs.t;
  daily_scores : float array;
  daily_utilization : float array;
  daily_write_amplification : float array;
  skipped_ops : int;
}

let run ?config ~block_bytes ~size_bytes ~days ops =
  let fs = Log_fs.create ?config ~block_bytes ~size_bytes () in
  let daily_scores = Array.make days 1.0 in
  let daily_utilization = Array.make days 0.0 in
  let daily_write_amplification = Array.make days 1.0 in
  let skipped = ref 0 in
  let next_day = ref 0 in
  let day_end d = float_of_int (d + 1) *. Workload.Op.seconds_per_day in
  let finish_day () =
    let d = !next_day in
    daily_scores.(d) <- Log_fs.layout_score fs;
    daily_utilization.(d) <- Log_fs.utilization fs;
    daily_write_amplification.(d) <- Log_fs.write_amplification fs;
    incr next_day
  in
  let apply op =
    Log_fs.set_time fs (Workload.Op.time_of op);
    match op with
    | Workload.Op.Create { ino; size; _ } ->
        if Log_fs.file_exists fs ~ino then incr skipped
        else Log_fs.create_file fs ~ino ~size
    | Workload.Op.Delete { ino; _ } ->
        if Log_fs.file_exists fs ~ino then Log_fs.delete_file fs ~ino else incr skipped
    | Workload.Op.Modify { ino; size; _ } ->
        if Log_fs.file_exists fs ~ino then Log_fs.rewrite_file fs ~ino ~size
        else incr skipped
  in
  Array.iter
    (fun op ->
      while !next_day < days && Workload.Op.time_of op >= day_end !next_day do
        finish_day ()
      done;
      try apply op with Log_fs.Out_of_space -> incr skipped)
    ops;
  while !next_day < days do
    finish_day ()
  done;
  { fs; daily_scores; daily_utilization; daily_write_amplification; skipped_ops = !skipped }
