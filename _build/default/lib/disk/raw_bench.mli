(** Raw-device sequential throughput: the "Raw Read/Write Throughput"
    baselines of the paper's Figure 4.

    The benchmark streams a region of the disk in maximum-size requests
    issued back-to-back, each request issued [host_gap] seconds after the
    previous completion (system-call and driver turnaround). Reads ride
    the track buffer's read-ahead; writes pay a lost rotation per request
    — exactly the asymmetry the paper observes. *)

type result = {
  bytes : int;
  elapsed : float;  (** seconds *)
  throughput : float;  (** bytes/second *)
}

val run :
  Drive.t -> ?host_gap:float -> ?start_lba:int -> op:Drive.op -> bytes:int -> unit -> result
(** Stream [bytes] (rounded down to whole sectors) from [start_lba]
    (default 0) with [host_gap] (default 0.7 ms) between requests. The
    drive is reset first. *)

val read_throughput : Drive.t -> ?bytes:int -> unit -> float
val write_throughput : Drive.t -> ?bytes:int -> unit -> float
(** Convenience wrappers (default 8 MB region), bytes/second. *)
