(** Seek-time model.

    Seek time as a function of cylinder distance is fitted as
    [a + b*sqrt(d) + c*d] through three published operating points:
    track-to-track, average (taken at one third of the full stroke, the
    mean distance between two uniformly random cylinders), and full
    stroke. This is the standard curve shape from Ruemmler & Wilkes,
    "An introduction to disk drive modeling" (IEEE Computer, 1994). *)

type t

val create :
  single_ms:float -> average_ms:float -> full_ms:float -> max_cylinder:int -> t
(** [max_cylinder] is the largest possible distance (cylinders - 1).
    Requires [0 < single_ms <= average_ms <= full_ms]. *)

val default_for : Geometry.t -> average_ms:float -> t
(** A curve for the given geometry using typical early-90s ratios:
    track-to-track = average / 6.5, full stroke = average * 1.8. *)

val time : t -> int -> float
(** [time t distance] in seconds; 0 for distance 0. Distances beyond
    [max_cylinder] are clamped. *)

val head_switch : t -> float
(** Time to switch active head within a cylinder (settle only). *)
