(** The disk service model.

    A single-spindle disk served one request at a time. The caller owns
    the clock: it passes the time at which each request arrives at the
    drive, and gets back the completion time. Mechanisms modelled, each
    of which the paper's performance discussion depends on:

    - seek time as a function of cylinder distance ({!Seek});
    - rotational latency: the platter angle is a function of absolute
      time, so a request that arrives "a little too late" for its target
      sector waits almost a full revolution — the {e lost rotation} that
      explains the paper's write-throughput ceiling;
    - media transfer at one sector per sector-time, streaming across
      track and cylinder boundaries (ideal skew);
    - a track buffer performing read-ahead: after a media read the drive
      keeps streaming subsequent sectors into its buffer, so back-to-back
      sequential reads are served at media rate without rotational loss.
      Writes are write-through (no write-behind), per the paper's
      hardware;
    - a per-request command overhead and a host-visible bus rate for
      buffer hits.

    Requests must not exceed [max_transfer_bytes] (the 64 KB limit of the
    paper's controller). *)

type op = Read | Write

type config = {
  geometry : Geometry.t;
  seek : Seek.t;
  track_buffer_bytes : int;  (** read-ahead buffer capacity (512 KB) *)
  max_transfer_bytes : int;  (** per-request cap (64 KB) *)
  command_overhead : float;  (** seconds of controller processing per request *)
  bus_rate : float;  (** bytes/second over the SCSI bus (buffer hits) *)
}

type stats = {
  mutable requests : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable seek_count : int;
  mutable seek_time : float;
  mutable rotation_wait : float;
  mutable transfer_time : float;
  mutable buffer_hit_sectors : int;
  mutable lost_rotations : int;
      (** requests whose rotational wait exceeded 85% of a revolution *)
}

type t

val paper_config : unit -> config
(** The Table 1 hardware: Seagate 32430N behind a Fast-SCSI (10 MB/s)
    Buslogic controller, 512 KB track buffer, 64 KB maximum transfer,
    11 ms average seek. *)

val sparcstation_config : unit -> config
(** The earlier study's I/O system ([Seltzer95] ran on a SparcStation 1):
    a comparable disk behind a much slower host adapter (~1.6 MB/s) with
    higher per-request overhead. The paper's Section 5.1 argues its
    larger-than-expected gains come from the PCI system's higher
    seek-to-transfer ratio; benchmarking against this configuration
    tests that explanation. *)

val create : config -> t
val config : t -> config
val stats : t -> stats
val reset_stats : t -> unit

val reset : t -> unit
(** Reset head position, buffer and statistics (a fresh spin-up). *)

val max_transfer_sectors : t -> int

val service : t -> now:float -> op -> lba:int -> nsectors:int -> float
(** [service t ~now op ~lba ~nsectors] serves one request arriving at
    [now] and returns its completion time. [now] may not be earlier than
    the previous request's completion (the model clamps it up if so —
    the drive serves one request at a time). [nsectors] must be within
    [1, max_transfer_sectors] and the range within the disk. *)

val busy_until : t -> float
(** Completion time of the last request served (0 initially). *)
