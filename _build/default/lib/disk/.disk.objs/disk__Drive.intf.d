lib/disk/drive.mli: Geometry Seek
