lib/disk/raw_bench.ml: Drive
