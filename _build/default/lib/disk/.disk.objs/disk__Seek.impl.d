lib/disk/seek.ml: Array Float Geometry
