lib/disk/drive.ml: Float Geometry Seek
