lib/disk/geometry.mli:
