lib/disk/geometry.ml:
