lib/disk/seek.mli: Geometry
