lib/disk/raw_bench.mli: Drive
