type result = { bytes : int; elapsed : float; throughput : float }

let run drive ?(host_gap = 0.7e-3) ?(start_lba = 0) ~op ~bytes () =
  Drive.reset drive;
  let sector_bytes = (Drive.config drive).geometry.sector_bytes in
  let total_sectors = bytes / sector_bytes in
  assert (total_sectors > 0);
  let chunk = Drive.max_transfer_sectors drive in
  let rec stream lba remaining clock =
    if remaining = 0 then clock
    else begin
      let n = min chunk remaining in
      let done_at = Drive.service drive ~now:clock op ~lba ~nsectors:n in
      stream (lba + n) (remaining - n) (done_at +. host_gap)
    end
  in
  let finish = stream start_lba total_sectors 0.0 in
  let bytes = total_sectors * sector_bytes in
  { bytes; elapsed = finish; throughput = float_of_int bytes /. finish }

let read_throughput drive ?(bytes = 8 * 1024 * 1024) () =
  (run drive ~op:Drive.Read ~bytes ()).throughput

let write_throughput drive ?(bytes = 8 * 1024 * 1024) () =
  (run drive ~op:Drive.Write ~bytes ()).throughput
