type t = { a : float; b : float; c : float; max_cylinder : int; head_switch_s : float }

(* Solve the 3x3 system fitting a + b*sqrt d + c*d through
   (1, single), (max/3, average), (max, full), times in seconds. *)
let create ~single_ms ~average_ms ~full_ms ~max_cylinder =
  assert (0.0 < single_ms && single_ms <= average_ms && average_ms <= full_ms);
  assert (max_cylinder >= 3);
  let d1 = 1.0 in
  let d2 = float_of_int max_cylinder /. 3.0 in
  let d3 = float_of_int max_cylinder in
  let t1 = single_ms /. 1000.0 in
  let t2 = average_ms /. 1000.0 in
  let t3 = full_ms /. 1000.0 in
  (* Gaussian elimination on [1 sqrt(d) d | t] rows *)
  let m =
    [|
      [| 1.0; sqrt d1; d1; t1 |];
      [| 1.0; sqrt d2; d2; t2 |];
      [| 1.0; sqrt d3; d3; t3 |];
    |]
  in
  for col = 0 to 2 do
    (* pivot: rows below col with largest |m.(row).(col)| *)
    let pivot = ref col in
    for row = col + 1 to 2 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    let tmp = m.(col) in
    m.(col) <- m.(!pivot);
    m.(!pivot) <- tmp;
    for row = col + 1 to 2 do
      let f = m.(row).(col) /. m.(col).(col) in
      for k = col to 3 do
        m.(row).(k) <- m.(row).(k) -. (f *. m.(col).(k))
      done
    done
  done;
  let c = m.(2).(3) /. m.(2).(2) in
  let b = (m.(1).(3) -. (m.(1).(2) *. c)) /. m.(1).(1) in
  let a = m.(0).(3) -. (m.(0).(1) *. b) -. (m.(0).(2) *. c) in
  { a; b; c; max_cylinder; head_switch_s = 0.9e-3 }

let default_for (geom : Geometry.t) ~average_ms =
  create ~single_ms:(average_ms /. 6.5) ~average_ms ~full_ms:(average_ms *. 1.8)
    ~max_cylinder:(geom.cylinders - 1)

let time t distance =
  assert (distance >= 0);
  if distance = 0 then 0.0
  else begin
    let d = float_of_int (min distance t.max_cylinder) in
    let s = t.a +. (t.b *. sqrt d) +. (t.c *. d) in
    (* the fitted curve can dip slightly negative near d=0 depending on
       the operating points; never report less than a settle time *)
    Float.max s t.head_switch_s
  end

let head_switch t = t.head_switch_s
