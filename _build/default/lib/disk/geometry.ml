type t = {
  cylinders : int;
  heads : int;
  sectors_per_track : int;
  sector_bytes : int;
  rpm : int;
}

type chs = { cylinder : int; head : int; sector : int }

let seagate_32430n =
  { cylinders = 3992; heads = 9; sectors_per_track = 116; sector_bytes = 512; rpm = 5411 }

let sectors_per_cylinder t = t.heads * t.sectors_per_track
let total_sectors t = t.cylinders * sectors_per_cylinder t
let capacity_bytes t = total_sectors t * t.sector_bytes
let rotation_period t = 60.0 /. float_of_int t.rpm
let sector_time t = rotation_period t /. float_of_int t.sectors_per_track

let media_rate t =
  float_of_int (t.sectors_per_track * t.sector_bytes) /. rotation_period t

let lba_to_chs t lba =
  assert (lba >= 0 && lba < total_sectors t);
  let spc = sectors_per_cylinder t in
  {
    cylinder = lba / spc;
    head = lba mod spc / t.sectors_per_track;
    sector = lba mod t.sectors_per_track;
  }

let cylinder_of_lba t lba = lba / sectors_per_cylinder t

let sector_angle t lba =
  float_of_int (lba mod t.sectors_per_track) /. float_of_int t.sectors_per_track
