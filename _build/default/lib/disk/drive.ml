type op = Read | Write

type config = {
  geometry : Geometry.t;
  seek : Seek.t;
  track_buffer_bytes : int;
  max_transfer_bytes : int;
  command_overhead : float;
  bus_rate : float;
}

type stats = {
  mutable requests : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable seek_count : int;
  mutable seek_time : float;
  mutable rotation_wait : float;
  mutable transfer_time : float;
  mutable buffer_hit_sectors : int;
  mutable lost_rotations : int;
}

(* Read-ahead window: after a media read whose last sector was [base]
   finishing at [base_time], sector [x] (base < x <= limit) is present in
   the buffer from time [base_time + (x - base) * sector_time]. [limit]
   models the buffer capacity; it slides forward as the host consumes. *)
type readahead = { mutable limit : int; base : int; base_time : float }

type t = {
  cfg : config;
  buffer_sectors : int;
  mutable head_cylinder : int;
  mutable ra : readahead option;
  mutable busy_until : float;
  stats : stats;
}

let paper_config () =
  let geometry = Geometry.seagate_32430n in
  {
    geometry;
    seek = Seek.default_for geometry ~average_ms:11.0;
    track_buffer_bytes = 512 * 1024;
    max_transfer_bytes = 64 * 1024;
    command_overhead = 0.5e-3;
    bus_rate = 10.0 *. 1048576.0;
  }

let sparcstation_config () =
  {
    (paper_config ()) with
    bus_rate = 1.6 *. 1048576.0;
    command_overhead = 1.5e-3;
  }

let fresh_stats () =
  {
    requests = 0;
    sectors_read = 0;
    sectors_written = 0;
    seek_count = 0;
    seek_time = 0.0;
    rotation_wait = 0.0;
    transfer_time = 0.0;
    buffer_hit_sectors = 0;
    lost_rotations = 0;
  }

let create cfg =
  assert (cfg.max_transfer_bytes >= cfg.geometry.sector_bytes);
  {
    cfg;
    buffer_sectors = cfg.track_buffer_bytes / cfg.geometry.sector_bytes;
    head_cylinder = 0;
    ra = None;
    busy_until = 0.0;
    stats = fresh_stats ();
  }

let config t = t.cfg
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.requests <- 0;
  s.sectors_read <- 0;
  s.sectors_written <- 0;
  s.seek_count <- 0;
  s.seek_time <- 0.0;
  s.rotation_wait <- 0.0;
  s.transfer_time <- 0.0;
  s.buffer_hit_sectors <- 0;
  s.lost_rotations <- 0

let reset t =
  t.head_cylinder <- 0;
  t.ra <- None;
  t.busy_until <- 0.0;
  reset_stats t

let max_transfer_sectors t = t.cfg.max_transfer_bytes / t.cfg.geometry.sector_bytes
let busy_until t = t.busy_until

(* Seek plus rotational wait to reach [lba] starting at [t0], from the
   current head cylinder. Rotational position is a global function of
   absolute time (all tracks index-aligned, no skew modelled for
   positioning). Pure: no state or statistics are touched. *)
let positioning_cost t ~t0 lba =
  let geom = t.cfg.geometry in
  let target_cyl = Geometry.cylinder_of_lba geom lba in
  let distance = abs (target_cyl - t.head_cylinder) in
  let seek_time = if distance = 0 then 0.0 else Seek.time t.cfg.seek distance in
  let t_settled = t0 +. seek_time in
  let period = Geometry.rotation_period geom in
  let target_angle = Geometry.sector_angle geom lba in
  let current_angle = Float.rem (t_settled /. period) 1.0 in
  let delta = Float.rem (target_angle -. current_angle +. 1.0) 1.0 in
  (seek_time, delta *. period)

(* Move the head to [lba] at time [t0]; returns the time at which the
   media transfer can start, and accounts statistics. *)
let position t ~t0 lba =
  let seek_time, wait = positioning_cost t ~t0 lba in
  if seek_time > 0.0 then t.stats.seek_count <- t.stats.seek_count + 1;
  t.stats.seek_time <- t.stats.seek_time +. seek_time;
  t.head_cylinder <- Geometry.cylinder_of_lba t.cfg.geometry lba;
  t.stats.rotation_wait <- t.stats.rotation_wait +. wait;
  if wait > 0.85 *. Geometry.rotation_period t.cfg.geometry then
    t.stats.lost_rotations <- t.stats.lost_rotations + 1;
  t0 +. seek_time +. wait

(* Per-sector transfer time: the media rate, unless the host bus is the
   bottleneck (SparcStation-era adapters were slower than the platter). *)
let effective_sector_time t =
  let geom = t.cfg.geometry in
  Float.max (Geometry.sector_time geom)
    (float_of_int geom.sector_bytes /. t.cfg.bus_rate)

let media_read t ~t0 ~lba ~nsectors =
  let geom = t.cfg.geometry in
  let t_start = position t ~t0 lba in
  let transfer = float_of_int nsectors *. effective_sector_time t in
  t.stats.transfer_time <- t.stats.transfer_time +. transfer;
  let t_done = t_start +. transfer in
  let last = lba + nsectors - 1 in
  t.head_cylinder <- Geometry.cylinder_of_lba geom last;
  (* the drive keeps streaming into its buffer after the request *)
  t.ra <- Some { limit = last + t.buffer_sectors; base = last; base_time = t_done };
  t_done

let service t ~now op ~lba ~nsectors =
  let geom = t.cfg.geometry in
  assert (nsectors >= 1 && nsectors <= max_transfer_sectors t);
  assert (lba >= 0 && lba + nsectors <= Geometry.total_sectors geom);
  let now = Float.max now t.busy_until in
  let t0 = now +. t.cfg.command_overhead in
  t.stats.requests <- t.stats.requests + 1;
  let completion =
    match op with
    | Write ->
        t.stats.sectors_written <- t.stats.sectors_written + nsectors;
        (* write-through: invalidate read-ahead, position, transfer *)
        t.ra <- None;
        let t_start = position t ~t0 lba in
        let transfer = float_of_int nsectors *. effective_sector_time t in
        t.stats.transfer_time <- t.stats.transfer_time +. transfer;
        t.head_cylinder <- Geometry.cylinder_of_lba geom (lba + nsectors - 1);
        t_start +. transfer
    | Read -> begin
        t.stats.sectors_read <- t.stats.sectors_read + nsectors;
        let last = lba + nsectors - 1 in
        let from_buffer =
          match t.ra with
          | Some ra when lba > ra.base && last <= ra.limit ->
              (* the read-ahead stream will deliver the data at media
                 rate; serve from the buffer only if that beats
                 repositioning the head directly *)
              let sector_time = Geometry.sector_time geom in
              let available =
                ra.base_time +. (float_of_int (last - ra.base) *. sector_time)
              in
              let bus_time =
                float_of_int (nsectors * geom.sector_bytes) /. t.cfg.bus_rate
              in
              let stream_completion = Float.max (t0 +. bus_time) available in
              let seek_time, rot_wait = positioning_cost t ~t0 lba in
              let reposition_completion =
                t0 +. seek_time +. rot_wait
                +. (float_of_int nsectors *. sector_time)
              in
              if stream_completion <= reposition_completion then Some (ra, stream_completion)
              else None
          | Some _ | None -> None
        in
        match from_buffer with
        | Some (ra, completion) ->
            t.stats.buffer_hit_sectors <- t.stats.buffer_hit_sectors + nsectors;
            ra.limit <- max ra.limit (last + t.buffer_sectors);
            t.head_cylinder <- Geometry.cylinder_of_lba geom last;
            completion
        | None -> media_read t ~t0 ~lba ~nsectors
      end
  in
  t.busy_until <- completion;
  completion
