(** Physical disk geometry and derived timing constants.

    The model is a classic non-zoned geometry: [cylinders] x [heads]
    tracks of [sectors_per_track] sectors each. The paper's disk (Seagate
    ST32430N) is zoned in reality; the paper reports the {e average}
    sectors per track (116), which we use uniformly — this preserves the
    average media rate, which is what the throughput results depend
    on. *)

type t = {
  cylinders : int;
  heads : int;
  sectors_per_track : int;
  sector_bytes : int;
  rpm : int;
}

type chs = { cylinder : int; head : int; sector : int }

val seagate_32430n : t
(** The configuration of Table 1: 3992 cylinders, 9 heads, 116 sectors
    per track (average), 512-byte sectors, 5411 RPM — 2.1 GB. *)

val sectors_per_cylinder : t -> int
val total_sectors : t -> int
val capacity_bytes : t -> int

val rotation_period : t -> float
(** Seconds for one revolution. *)

val sector_time : t -> float
(** Seconds for one sector to pass under the head (media transfer rate of
    one sector). *)

val media_rate : t -> float
(** Sustained media transfer rate in bytes/second (one track per
    revolution). *)

val lba_to_chs : t -> int -> chs
(** Decompose an LBA. The LBA must lie in [0, total_sectors). *)

val cylinder_of_lba : t -> int -> int

val sector_angle : t -> int -> float
(** Angular position in [0, 1) at which the given LBA's sector begins on
    its track. *)
