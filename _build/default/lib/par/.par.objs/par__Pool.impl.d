lib/par/pool.ml: Array Condition Domain Fmt Fun List Mutex Printexc Queue Timings Unix
