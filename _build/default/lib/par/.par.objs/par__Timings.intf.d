lib/par/timings.mli: Format
