lib/par/timings.ml: Float Fmt Format List Mutex Util
