lib/par/pool.mli: Timings
