type t = { bits : Bytes.t; len : int }

let create len =
  assert (len >= 0);
  { bits = Bytes.make ((len + 7) / 8) '\000'; len }

let length t = t.len
let copy t = { bits = Bytes.copy t.bits; len = t.len }

let get t i =
  assert (i >= 0 && i < t.len);
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  assert (i >= 0 && i < t.len);
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.chr (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

let clear t i =
  assert (i >= 0 && i < t.len);
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.chr (Char.code (Bytes.unsafe_get t.bits b) land lnot (1 lsl (i land 7)) land 0xFF))

let set_range t ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= t.len);
  for i = pos to pos + len - 1 do
    set t i
  done

let clear_range t ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= t.len);
  for i = pos to pos + len - 1 do
    clear t i
  done

let all_clear t ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= t.len);
  let rec loop i = i >= pos + len || ((not (get t i)) && loop (i + 1)) in
  loop pos

let all_set t ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= t.len);
  let rec loop i = i >= pos + len || (get t i && loop (i + 1)) in
  loop pos

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let count_set t =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte c) t.bits;
  (* mask out any padding bits in the final byte (always written as 0,
     but be defensive) *)
  !total

let count_clear t = t.len - count_set t

let find_clear t ~start =
  assert (start >= 0);
  let rec scan i =
    if i >= t.len then None
    else if i land 7 = 0 && i + 8 <= t.len && Bytes.unsafe_get t.bits (i lsr 3) = '\255'
    then scan (i + 8)
    else if not (get t i) then Some i
    else scan (i + 1)
  in
  if start >= t.len then None else scan start

let find_clear_wrap t ~start =
  if t.len = 0 then None
  else begin
    let start = start mod t.len in
    match find_clear t ~start with
    | Some _ as r -> r
    | None -> (
        match find_clear t ~start:0 with Some i when i < start -> Some i | _ -> None)
  end

let find_clear_run t ~start ~len =
  assert (len > 0);
  (* walk forward; on a set bit, jump past it *)
  let rec scan pos =
    if pos + len > t.len then None
    else begin
      (* find the last set bit in the window, if any, scanning backwards
         so we can skip the whole window on failure *)
      let rec check i =
        if i < pos then Some pos else if get t i then scan (i + 1) else check (i - 1)
      in
      check (pos + len - 1)
    end
  in
  if start < 0 then None else scan start

let find_clear_run_wrap t ~start ~len =
  if t.len = 0 then None
  else begin
    let start = start mod t.len in
    match find_clear_run t ~start ~len with
    | Some _ as r -> r
    | None -> (
        match find_clear_run t ~start:0 ~len with
        | Some i when i < start -> Some i
        | _ -> None)
  end

let clear_run_length_at t i =
  assert (i >= 0 && i < t.len);
  let rec loop j = if j < t.len && not (get t j) then loop (j + 1) else j - i in
  loop i

let iter_clear_runs t f =
  let rec loop i =
    if i < t.len then
      if get t i then loop (i + 1)
      else begin
        let len = clear_run_length_at t i in
        f ~pos:i ~len;
        loop (i + len)
      end
  in
  loop 0
