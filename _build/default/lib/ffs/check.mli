(** File-system consistency checking — an [fsck]-style audit that
    returns a structured report instead of asserting.

    The checks cross-reference three views of the same state: the inode
    table's block claims, the per-group allocation bitmaps, and the
    directory tree. On a correct image all views agree; any divergence
    is reported as a {!problem}. Tests use this to validate the
    simulator after adversarial workloads; {!Fs.check_invariants}
    remains the assertion-style variant for use inside test oracles. *)

type problem =
  | Double_claim of { fragment : int; first_owner : int; second_owner : int }
      (** two inodes claim the same fragment *)
  | Claim_not_allocated of { fragment : int; owner : int }
      (** an inode claims a fragment the bitmap says is free *)
  | Usage_mismatch of { claimed : int; allocated : int }
      (** total fragments claimed by inodes vs. marked used in bitmaps
          (after per-fragment problems are accounted) *)
  | Group_counter_mismatch of { cg : int; what : string; counter : int; recount : int }
  | Orphan_inode of { inum : int }  (** an inode no directory references *)
  | Dangling_entry of { dir : int; name : string; inum : int }
      (** a directory entry naming a nonexistent inode *)
  | Bad_run of { inum : int; addr : int; frags : int }
      (** a data run with a nonsensical address or length *)

type report = {
  problems : problem list;
  files : int;
  directories : int;
  fragments_claimed : int;
}

val run : Fs.t -> report
val is_clean : report -> bool
val pp_problem : Format.formatter -> problem -> unit
val pp : Format.formatter -> report -> unit
