lib/ffs/run_index.ml: Array Bitmap Fmt
