lib/ffs/io_engine.ml: Array Disk Fs Hashtbl Inode Params Util
