lib/ffs/params.mli: Format
