lib/ffs/inode.ml: Array Fmt
