lib/ffs/inode.mli: Format
