lib/ffs/cg.mli: Params
