lib/ffs/check.ml: Array Cg Fmt Fs Hashtbl Inode List Params
