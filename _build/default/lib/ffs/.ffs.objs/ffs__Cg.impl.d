lib/ffs/cg.ml: Bitmap Option Params Run_index
