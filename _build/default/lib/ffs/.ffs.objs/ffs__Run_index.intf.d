lib/ffs/run_index.mli:
