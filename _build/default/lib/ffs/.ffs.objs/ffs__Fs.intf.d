lib/ffs/fs.mli: Cg Inode Params
