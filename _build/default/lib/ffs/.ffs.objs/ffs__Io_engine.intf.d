lib/ffs/io_engine.mli: Disk Fs
