lib/ffs/bitmap.ml: Array Bytes Char
