lib/ffs/params.ml: Fmt Util
