lib/ffs/bitmap.mli:
