lib/ffs/check.mli: Format Fs
