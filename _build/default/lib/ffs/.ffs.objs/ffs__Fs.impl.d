lib/ffs/fs.ml: Array Cg Fmt Hashtbl Inode List Option Params Util
