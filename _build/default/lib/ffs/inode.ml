type entry = { addr : int; frags : int }
type kind = File | Dir

type t = {
  inum : int;
  kind : kind;
  mutable size : int;
  mutable entries : entry array;
  mutable indirect_addrs : int array;
  mutable ctime : float;
  mutable mtime : float;
}

let v ~inum ~kind ~time =
  { inum; kind; size = 0; entries = [||]; indirect_addrs = [||]; ctime = time; mtime = time }

let block_count t = Array.length t.entries
let frag_count t = Array.fold_left (fun acc e -> acc + e.frags) 0 t.entries

let total_frags_with_metadata t =
  (* indirect blocks are full blocks; infer the block size from a full
     data run when available, else assume the common 8-fragment block *)
  let fpb =
    Array.fold_left (fun acc e -> max acc e.frags) 8 t.entries
  in
  frag_count t + (Array.length t.indirect_addrs * fpb)

let is_multi_block t = Array.length t.entries >= 2

let pp ppf t =
  Fmt.pf ppf "@[inode %d (%s) size=%d runs=[%a]%a@]" t.inum
    (match t.kind with File -> "file" | Dir -> "dir")
    t.size
    Fmt.(array ~sep:(any "; ") (fun ppf e -> pf ppf "%d+%d" e.addr e.frags))
    t.entries
    (fun ppf a ->
      if Array.length a > 0 then
        Fmt.pf ppf " ind=[%a]" Fmt.(array ~sep:(any "; ") int) a)
    t.indirect_addrs
