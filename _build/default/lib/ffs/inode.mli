(** In-memory inodes.

    Rather than a faithful on-disk pointer tree, an inode carries the
    flat list of its data runs in logical order, plus the addresses of
    its indirect (metadata) blocks. This preserves everything the
    paper's analysis needs — where each logical block landed, where the
    indirect blocks landed — without simulating pointer-block contents.

    Every address is a global fragment address. A full block run has
    [frags = frags_per_block]; the final run of a small file may be a
    shorter fragment run. *)

type entry = { addr : int; frags : int }

type kind = File | Dir

type t = {
  inum : int;
  kind : kind;
  mutable size : int;  (** bytes *)
  mutable entries : entry array;  (** data runs, logical order *)
  mutable indirect_addrs : int array;
      (** indirect metadata blocks, in the order they interpose in the
          logical block stream *)
  mutable ctime : float;
  mutable mtime : float;
}

val v : inum:int -> kind:kind -> time:float -> t
(** A fresh, empty inode. *)

val block_count : t -> int
(** Number of data runs (full blocks plus at most one tail run). *)

val frag_count : t -> int
(** Total data fragments, excluding indirect blocks. *)

val total_frags_with_metadata : t -> int
(** Data fragments plus indirect-block fragments — the file's total space
    charge. *)

val is_multi_block : t -> bool
(** Does the file have two or more data runs? (Single-run files have no
    defined layout score.) *)

val pp : Format.formatter -> t -> unit
