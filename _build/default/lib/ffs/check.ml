type problem =
  | Double_claim of { fragment : int; first_owner : int; second_owner : int }
  | Claim_not_allocated of { fragment : int; owner : int }
  | Usage_mismatch of { claimed : int; allocated : int }
  | Group_counter_mismatch of { cg : int; what : string; counter : int; recount : int }
  | Orphan_inode of { inum : int }
  | Dangling_entry of { dir : int; name : string; inum : int }
  | Bad_run of { inum : int; addr : int; frags : int }

type report = {
  problems : problem list;
  files : int;
  directories : int;
  fragments_claimed : int;
}

let run fs =
  let params = Fs.params fs in
  let problems = ref [] in
  let add p = problems := p :: !problems in
  let fpb = params.Params.frags_per_block in
  let total_frags = Params.total_frags params in
  (* 1: collect every fragment claim, flagging overlaps and range errors *)
  let owner : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let files = ref 0 and directories = ref 0 in
  let claim inum addr frags =
    if addr < 0 || frags <= 0 || addr + frags > total_frags then
      add (Bad_run { inum; addr; frags })
    else
      for a = addr to addr + frags - 1 do
        match Hashtbl.find_opt owner a with
        | Some first_owner ->
            add (Double_claim { fragment = a; first_owner; second_owner = inum })
        | None -> Hashtbl.replace owner a inum
      done
  in
  Fs.iter_all_inodes fs (fun ino ->
      (match ino.Inode.kind with
      | Inode.File -> incr files
      | Inode.Dir -> incr directories);
      Array.iter (fun e -> claim ino.Inode.inum e.Inode.addr e.Inode.frags) ino.Inode.entries;
      Array.iter (fun a -> claim ino.Inode.inum a fpb) ino.Inode.indirect_addrs);
  (* 2: every claim must be marked allocated in its group's bitmap *)
  let cgs = Fs.cg_states fs in
  Hashtbl.iter
    (fun fragment inum ->
      let cg = Params.group_of_frag params fragment in
      let local = fragment - Params.data_base params cg in
      if local < 0 || local >= Cg.data_frags cgs.(cg) then
        add (Bad_run { inum; addr = fragment; frags = 1 })
      else if Cg.frag_is_free cgs.(cg) local then
        add (Claim_not_allocated { fragment; owner = inum }))
    owner;
  (* 3: totals — leaked fragments show up here (allocated, unowned) *)
  let claimed = Hashtbl.length owner in
  let allocated = Fs.used_data_frags fs in
  if claimed <> allocated then add (Usage_mismatch { claimed; allocated });
  (* 4: per-group counters vs. a bitmap recount *)
  Array.iteri
    (fun cg_index cg ->
      let free_frag_recount = ref 0 and free_block_recount = ref 0 in
      for f = 0 to Cg.data_frags cg - 1 do
        if Cg.frag_is_free cg f then incr free_frag_recount
      done;
      for b = 0 to Cg.data_blocks cg - 1 do
        if Cg.block_is_free cg b then incr free_block_recount
      done;
      if !free_frag_recount <> Cg.free_frag_count cg then
        add
          (Group_counter_mismatch
             { cg = cg_index; what = "free fragments"; counter = Cg.free_frag_count cg;
               recount = !free_frag_recount });
      if !free_block_recount <> Cg.free_block_count cg then
        add
          (Group_counter_mismatch
             { cg = cg_index; what = "free blocks"; counter = Cg.free_block_count cg;
               recount = !free_block_recount }))
    cgs;
  (* 5: directory tree — every inode referenced, every entry resolvable *)
  let referenced : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  Hashtbl.replace referenced (Fs.root fs) ();
  List.iter
    (fun dir ->
      List.iter
        (fun (name, inum) ->
          (match Fs.inode fs inum with
          | _ -> ()
          | exception Not_found -> add (Dangling_entry { dir; name; inum }));
          Hashtbl.replace referenced inum ())
        (Fs.dir_entries fs dir))
    (Fs.dir_inums fs);
  Fs.iter_all_inodes fs (fun ino ->
      if not (Hashtbl.mem referenced ino.Inode.inum) then
        add (Orphan_inode { inum = ino.Inode.inum }));
  {
    problems = List.rev !problems;
    files = !files;
    directories = !directories;
    fragments_claimed = claimed;
  }

let is_clean r = r.problems = []

let pp_problem ppf = function
  | Double_claim { fragment; first_owner; second_owner } ->
      Fmt.pf ppf "fragment %d claimed by both inode %d and inode %d" fragment first_owner
        second_owner
  | Claim_not_allocated { fragment; owner } ->
      Fmt.pf ppf "inode %d claims fragment %d which the bitmap marks free" owner fragment
  | Usage_mismatch { claimed; allocated } ->
      Fmt.pf ppf "inodes claim %d fragments but bitmaps mark %d used" claimed allocated
  | Group_counter_mismatch { cg; what; counter; recount } ->
      Fmt.pf ppf "group %d %s counter says %d, bitmap recount says %d" cg what counter
        recount
  | Orphan_inode { inum } -> Fmt.pf ppf "inode %d is referenced by no directory" inum
  | Dangling_entry { dir; name; inum } ->
      Fmt.pf ppf "directory %d entry %S points to missing inode %d" dir name inum
  | Bad_run { inum; addr; frags } ->
      Fmt.pf ppf "inode %d has an invalid run (addr %d, %d fragments)" inum addr frags

let pp ppf r =
  if is_clean r then
    Fmt.pf ppf "clean: %d files, %d directories, %d fragments claimed" r.files
      r.directories r.fragments_claimed
  else
    Fmt.pf ppf "@[<v>%d problem(s):@ %a@]" (List.length r.problems)
      (Fmt.list ~sep:Fmt.cut pp_problem) r.problems
