type t = { days : int; description : string; result : Replay.result }

(* bump the version suffix whenever the marshalled representation of
   Replay.result or Fs.t changes *)
let magic = "FFS-REPRO-IMAGE-1\n"

let save ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc t [])

let load ~path =
  if not (Sys.file_exists path) then Fmt.failwith "Image.load: no such file: %s" path;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match
        let header = really_input_string ic (String.length magic) in
        if header <> magic then Fmt.failwith "Image.load: %s is not an aged image" path;
        (Marshal.from_channel ic : t)
      with
      | t -> t
      | exception End_of_file -> Fmt.failwith "Image.load: %s is truncated" path)
