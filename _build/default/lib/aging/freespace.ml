type report = {
  total_free_blocks : int;
  total_free_fragments : int;
  free_runs : int;
  longest_run : int;
  mean_run : float;
  median_run : float;
  run_histogram : (int * int) array;
  blocks_in_cluster_runs : int;
  cluster_capacity_fraction : float;
}

let report_of_runs ~params ~histogram_max ~free_fragments runs =
  let maxcontig = params.Ffs.Params.maxcontig in
  let total_free_blocks = List.fold_left ( + ) 0 runs in
  let free_runs = List.length runs in
  let longest_run = List.fold_left max 0 runs in
  let mean_run =
    if free_runs = 0 then 0.0 else float_of_int total_free_blocks /. float_of_int free_runs
  in
  let median_run =
    if free_runs = 0 then 0.0
    else Util.Stats.percentile (Array.of_list (List.map float_of_int runs)) 50.0
  in
  let histogram = Array.make histogram_max 0 in
  List.iter
    (fun len ->
      let slot = min len histogram_max - 1 in
      histogram.(slot) <- histogram.(slot) + 1)
    runs;
  let blocks_in_cluster_runs =
    List.fold_left (fun acc len -> if len >= maxcontig then acc + len else acc) 0 runs
  in
  {
    total_free_blocks;
    total_free_fragments = free_fragments;
    free_runs;
    longest_run;
    mean_run;
    median_run;
    run_histogram = Array.mapi (fun i c -> (i + 1, c)) histogram;
    blocks_in_cluster_runs;
    cluster_capacity_fraction =
      (if total_free_blocks = 0 then 0.0
       else float_of_int blocks_in_cluster_runs /. float_of_int total_free_blocks);
  }

let runs_of_cg cg =
  let runs = ref [] in
  let histogram = Ffs.Cg.free_run_histogram cg ~max:(Ffs.Cg.data_blocks cg) in
  Array.iteri
    (fun i count ->
      for _ = 1 to count do
        runs := (i + 1) :: !runs
      done)
    histogram;
  !runs

let analyze_cg ?(histogram_max = 16) params cg =
  report_of_runs ~params ~histogram_max ~free_fragments:(Ffs.Cg.free_frag_count cg)
    (runs_of_cg cg)

let analyze ?(histogram_max = 16) fs =
  let params = Ffs.Fs.params fs in
  let runs =
    Array.fold_left (fun acc cg -> List.rev_append (runs_of_cg cg) acc) []
      (Ffs.Fs.cg_states fs)
  in
  report_of_runs ~params ~histogram_max ~free_fragments:(Ffs.Fs.free_data_frags fs) runs

let pp ppf r =
  Fmt.pf ppf
    "@[<v>free: %d blocks (%d fragments) in %d runs@ longest run %d blocks; mean %.1f, \
     median %.1f@ free blocks in cluster-sized runs: %d (%.0f%%)@ run histogram:%a@]"
    r.total_free_blocks r.total_free_fragments r.free_runs r.longest_run r.mean_run
    r.median_run r.blocks_in_cluster_runs
    (100.0 *. r.cluster_capacity_fraction)
    (fun ppf hist ->
      Array.iter
        (fun (len, count) -> if count > 0 then Fmt.pf ppf "@ %3d-block runs: %d" len count)
        hist)
    r.run_histogram
