lib/aging/blockmap.ml: Array Buffer Ffs Fmt String
