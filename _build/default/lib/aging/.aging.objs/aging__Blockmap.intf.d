lib/aging/blockmap.mli: Ffs
