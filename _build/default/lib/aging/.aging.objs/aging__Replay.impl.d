lib/aging/replay.ml: Array Ffs Fmt Hashtbl Layout_score Logs Workload
