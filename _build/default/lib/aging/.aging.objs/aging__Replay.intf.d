lib/aging/replay.mli: Ffs Hashtbl Workload
