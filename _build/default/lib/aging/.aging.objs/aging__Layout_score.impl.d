lib/aging/layout_score.ml: Array Ffs List
