lib/aging/image.mli: Replay
