lib/aging/image.ml: Fmt Fun Marshal Replay String Sys
