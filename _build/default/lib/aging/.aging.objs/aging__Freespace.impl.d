lib/aging/freespace.ml: Array Ffs Fmt List Util
