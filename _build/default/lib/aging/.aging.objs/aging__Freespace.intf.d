lib/aging/freespace.mli: Ffs Format
