lib/aging/layout_score.mli: Ffs
