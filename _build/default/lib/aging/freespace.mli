(** Free-space structure analysis.

    The paper's motivating observation (from Smith & Seltzer's TR-35-94
    study) is that aged UNIX file systems still contain {e many large
    clusters of free space} — fragmentation of new files is the
    allocator's failure to exploit them, not their absence. This module
    quantifies that: the distribution of maximal free-block runs and
    how much of the free space sits in cluster-sized runs. *)

type report = {
  total_free_blocks : int;
  total_free_fragments : int;
  free_runs : int;  (** number of maximal free runs *)
  longest_run : int;  (** blocks *)
  mean_run : float;
  median_run : float;
  run_histogram : (int * int) array;
      (** (run length, count); lengths above the last slot are folded
          into it *)
  blocks_in_cluster_runs : int;
      (** free blocks inside runs of at least [maxcontig] *)
  cluster_capacity_fraction : float;
      (** [blocks_in_cluster_runs / total_free_blocks]; 0 when the file
          system is full *)
}

val analyze : ?histogram_max:int -> Ffs.Fs.t -> report
(** Whole-file-system analysis (default histogram cap: 16). *)

val analyze_cg : ?histogram_max:int -> Ffs.Params.t -> Ffs.Cg.t -> report
(** Single-group analysis. *)

val pp : Format.formatter -> report -> unit
