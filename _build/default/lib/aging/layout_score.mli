(** The paper's fragmentation metric.

    The layout score of a file is the fraction of its blocks that are
    {e optimally allocated} — physically contiguous with the previous
    block of the same file. The first block is excluded (it has no
    previous block) and one-block files have no defined score. The
    aggregate layout score of a file system is the fraction of all
    counted blocks (across files) that are optimal. *)

val file_score : Ffs.Inode.t -> float option
(** [None] for files with fewer than two data runs. *)

val file_counts : Ffs.Inode.t -> int * int
(** [(optimal, counted)] for one file; [(0, 0)] for one-run files. *)

val aggregate : Ffs.Fs.t -> float
(** Aggregate layout score over all regular files; 1.0 on an empty file
    system (nothing is mis-allocated). *)

val aggregate_of : Ffs.Fs.t -> inums:int list -> float
(** Aggregate over a specific set of files (e.g. the hot set). *)

type size_bucket = { max_bytes : int; score : float; files : int; counted_blocks : int }

val by_size : ?bucket_lo:int -> ?bucket_hi:int -> Ffs.Fs.t -> inums:int list option -> size_bucket list
(** Aggregate score per power-of-two size bucket: a file lands in the
    smallest bucket whose [max_bytes] is >= its size. Defaults: 16 KB to
    32 MB. Buckets with no multi-run files are omitted. *)
