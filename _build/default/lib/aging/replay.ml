let src = Logs.Src.create "aging.replay" ~doc:"file-system aging replayer"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  fs : Ffs.Fs.t;
  daily_scores : float array;
  daily_utilization : float array;
  skipped_ops : int;
  ino_map : (int, int) Hashtbl.t;
}

let run ?(config = Ffs.Fs.default_config) ?(progress = fun ~day:_ ~score:_ -> ())
    ~params ~days ops =
  let fs = Ffs.Fs.create ~config params in
  let ncg = params.Ffs.Params.ncg in
  let ipg = Ffs.Params.inodes_per_group params in
  (* one directory per cylinder group, pinned *)
  let group_dirs =
    Array.init ncg (fun cg ->
        Ffs.Fs.mkdir_in_cg fs ~parent:(Ffs.Fs.root fs) ~name:(Fmt.str "cg%03d" cg) ~cg)
  in
  let ino_map : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let daily_scores = Array.make days 1.0 in
  let daily_utilization = Array.make days 0.0 in
  let skipped = ref 0 in
  let next_day = ref 0 in
  let day_end d = float_of_int (d + 1) *. Workload.Op.seconds_per_day in
  let finish_day () =
    let d = !next_day in
    daily_scores.(d) <- Layout_score.aggregate fs;
    daily_utilization.(d) <- Ffs.Fs.utilization fs;
    progress ~day:d ~score:daily_scores.(d);
    incr next_day
  in
  let apply op =
    Ffs.Fs.set_time fs (Workload.Op.time_of op);
    match op with
    | Workload.Op.Create { ino; size; _ } -> (
        match Hashtbl.find_opt ino_map ino with
        | Some _ ->
            (* shouldn't happen in a well-formed workload; treat as modify *)
            incr skipped
        | None ->
            let cg = ino / ipg mod ncg in
            let dir = group_dirs.(cg) in
            let inum = Ffs.Fs.create_file fs ~dir ~name:(Fmt.str "f%d" ino) ~size in
            Hashtbl.replace ino_map ino inum)
    | Workload.Op.Delete { ino; _ } -> (
        match Hashtbl.find_opt ino_map ino with
        | None -> incr skipped
        | Some inum ->
            Ffs.Fs.delete_inum fs inum;
            Hashtbl.remove ino_map ino)
    | Workload.Op.Modify { ino; size; _ } -> (
        match Hashtbl.find_opt ino_map ino with
        | None -> incr skipped
        | Some inum -> Ffs.Fs.rewrite_file fs ~inum ~size)
  in
  Array.iter
    (fun op ->
      while !next_day < days && Workload.Op.time_of op >= day_end !next_day do
        finish_day ()
      done;
      try apply op
      with Ffs.Fs.Out_of_space ->
        incr skipped;
        Log.warn (fun m -> m "out of space replaying %s inode %d; op skipped"
          (match op with
           | Workload.Op.Create _ -> "create"
           | Workload.Op.Delete _ -> "delete"
           | Workload.Op.Modify _ -> "modify")
          (Workload.Op.ino_of op)))
    ops;
  while !next_day < days do
    finish_day ()
  done;
  { fs; daily_scores; daily_utilization; skipped_ops = !skipped; ino_map }

let hot_inums result ~since =
  Ffs.Fs.fold_files result.fs ~init:[] ~f:(fun acc ino ->
      if ino.Ffs.Inode.mtime >= since then ino.Ffs.Inode.inum :: acc else acc)
