let file_counts (ino : Ffs.Inode.t) =
  let entries = ino.Ffs.Inode.entries in
  let n = Array.length entries in
  if n < 2 then (0, 0)
  else begin
    let optimal = ref 0 in
    for i = 1 to n - 1 do
      let prev = entries.(i - 1) and cur = entries.(i) in
      if cur.Ffs.Inode.addr = prev.Ffs.Inode.addr + prev.Ffs.Inode.frags then incr optimal
    done;
    (!optimal, n - 1)
  end

let file_score ino =
  match file_counts ino with
  | _, 0 -> None
  | optimal, counted -> Some (float_of_int optimal /. float_of_int counted)

let aggregate_counts fold =
  let optimal, counted =
    fold (0, 0) (fun (o, c) ino ->
        let fo, fc = file_counts ino in
        (o + fo, c + fc))
  in
  if counted = 0 then 1.0 else float_of_int optimal /. float_of_int counted

let aggregate fs = aggregate_counts (fun init f -> Ffs.Fs.fold_files fs ~init ~f)

let aggregate_of fs ~inums =
  aggregate_counts (fun init f ->
      List.fold_left (fun acc inum -> f acc (Ffs.Fs.inode fs inum)) init inums)

type size_bucket = { max_bytes : int; score : float; files : int; counted_blocks : int }

let by_size ?(bucket_lo = 16 * 1024) ?(bucket_hi = 32 * 1024 * 1024) fs ~inums =
  let nbuckets =
    let rec count b n = if b >= bucket_hi then n + 1 else count (b * 2) (n + 1) in
    count bucket_lo 0
  in
  let optimal = Array.make nbuckets 0 in
  let counted = Array.make nbuckets 0 in
  let files = Array.make nbuckets 0 in
  let bucket_of size =
    let rec find b i = if size <= b || i = nbuckets - 1 then i else find (b * 2) (i + 1) in
    find bucket_lo 0
  in
  let visit (ino : Ffs.Inode.t) =
    let fo, fc = file_counts ino in
    if fc > 0 then begin
      let b = bucket_of ino.Ffs.Inode.size in
      optimal.(b) <- optimal.(b) + fo;
      counted.(b) <- counted.(b) + fc;
      files.(b) <- files.(b) + 1
    end
  in
  (match inums with
  | None -> Ffs.Fs.iter_files fs visit
  | Some list -> List.iter (fun inum -> visit (Ffs.Fs.inode fs inum)) list);
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if counted.(i) > 0 then
      buckets :=
        {
          max_bytes = bucket_lo * (1 lsl i);
          score = float_of_int optimal.(i) /. float_of_int counted.(i);
          files = files.(i);
          counted_blocks = counted.(i);
        }
        :: !buckets
  done;
  !buckets
