(** Persistence of aged file-system images.

    An aged image (the {!Replay.result} of an aging run, including the
    daily score series and the inode map) can be saved to disk and
    reloaded, so that the expensive ten-month replay runs once and the
    benchmarks, inspectors and examples operate on the same image — the
    way the paper benchmarks one aged disk repeatedly.

    The format is OCaml [Marshal] prefixed with a versioned magic
    string; it is a cache, not an interchange format. *)

type t = {
  days : int;  (** length of the aging run *)
  description : string;  (** free-form provenance (workload, allocator, seed) *)
  result : Replay.result;
}

val save : path:string -> t -> unit

val load : path:string -> t
(** Raises [Failure] if the file is missing, truncated, or was written
    by a different version of this library. *)
