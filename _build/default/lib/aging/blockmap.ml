let cell_char cg ~lo ~hi =
  let used = ref 0 and total = ref 0 in
  for b = lo to hi - 1 do
    incr total;
    if not (Ffs.Cg.block_is_free cg b) then incr used
  done;
  if !total = 0 then ' '
  else if !used = 0 then '.'
  else if !used = !total then '#'
  else 'o'

let render_cg ?(width = 64) cg =
  let nblocks = Ffs.Cg.data_blocks cg in
  let per_cell = max 1 ((nblocks + width - 1) / width) in
  String.init width (fun i ->
      let lo = i * per_cell in
      if lo >= nblocks then ' ' else cell_char cg ~lo ~hi:(min nblocks (lo + per_cell)))

let render ?(width = 64) fs =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun cg ->
      Buffer.add_string buf
        (Fmt.str "cg %02d |%s| %4d/%d free\n" (Ffs.Cg.index cg) (render_cg ~width cg)
           (Ffs.Cg.free_block_count cg) (Ffs.Cg.data_blocks cg)))
    (Ffs.Fs.cg_states fs);
  Buffer.contents buf
