(** ASCII rendering of the on-disk allocation picture — one character
    per group of block slots, one row per cylinder group. Makes
    fragmentation visible at a glance:

    {v
    cg 00 |##########o..o..#oo...                    |
    cg 01 |######o.o.o...........                    |
    v}

    [#] all blocks in the cell allocated, [.] all free, [o] mixed. *)

val render : ?width:int -> Ffs.Fs.t -> string
(** One row per cylinder group, [width] cells each (default 64). *)

val render_cg : ?width:int -> Ffs.Cg.t -> string
(** A single group on one line. *)
