(** The aging replayer (Section 3.2 of the paper).

    Applies a workload to an empty file system using the paper's
    placement trick: one directory is created per cylinder group up
    front, and every file is created in the directory of the group its
    original inode number maps to, so each group sees the same sequence
    of allocations and deallocations as on the original system.

    At the end of each simulated day the aggregate layout score and the
    utilization are recorded — the data behind Figures 1 and 2. *)

type result = {
  fs : Ffs.Fs.t;  (** the aged image *)
  daily_scores : float array;  (** aggregate layout score, end of each day *)
  daily_utilization : float array;
  skipped_ops : int;  (** operations dropped (e.g. transient no-space) *)
  ino_map : (int, int) Hashtbl.t;
      (** workload inode number -> live inode number in [fs] *)
}

val run :
  ?config:Ffs.Fs.config ->
  ?progress:(day:int -> score:float -> unit) ->
  params:Ffs.Params.t ->
  days:int ->
  Workload.Op.t array ->
  result
(** Replay a time-sorted workload. [config] selects the allocator under
    test (default: traditional FFS). *)

val hot_inums : result -> since:float -> int list
(** Files in the aged image last modified at or after [since] — the
    paper's "hot set" (Section 5.2) when [since] is 30 days before the
    end. *)
