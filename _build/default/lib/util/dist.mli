(** Probability distributions used by the synthetic workload generators.

    File sizes on UNIX file systems are classically modelled as a lognormal
    body with a heavy (Pareto) tail; inter-arrival times as exponential or
    bursty mixtures; popularity as Zipf. Each sampler takes an explicit
    {!Prng.t} so callers control determinism. *)

type t
(** A distribution over floats, packaged with its sampler. *)

val sample : t -> Prng.t -> float
(** Draw one value. *)

val mean_estimate : t -> float
(** Analytic mean where known, used for sizing workloads a priori.
    For truncated/mixture forms this is the mean of the untruncated
    components and may slightly overestimate. *)

val constant : float -> t
(** Degenerate distribution. *)

val uniform : lo:float -> hi:float -> t
(** Uniform on [lo, hi). Requires [lo <= hi]. *)

val exponential : mean:float -> t
(** Exponential with the given mean ([mean > 0]). *)

val lognormal : mu:float -> sigma:float -> t
(** Lognormal: [exp (mu + sigma * N(0,1))]. *)

val lognormal_of_median : median:float -> sigma:float -> t
(** Lognormal parameterised by its median (the [exp mu] value), which is
    more intuitive for file sizes. *)

val pareto : xm:float -> alpha:float -> t
(** Pareto with scale [xm > 0] and shape [alpha > 0]; heavy-tailed for
    [alpha <= 2]. *)

val truncate : lo:float -> hi:float -> t -> t
(** Clamp samples into [lo, hi] (clamping, not rejection, so mass piles at
    the bounds — adequate for workload sizing). *)

val mixture : (t * float) array -> t
(** Mixture with the given component weights (non-negative, positive
    sum). *)

val zipf : n:int -> s:float -> t
(** Zipf over ranks 1..n with exponent [s]; returns the rank as a float.
    Sampling is O(log n) via a precomputed CDF. *)

val empirical : (float * float) array -> t
(** [empirical [| (v1, w1); ... |]] draws value [vi] with probability
    proportional to [wi]. *)
