(** Plain-text rendering of experiment output: aligned tables and ASCII
    line charts. Every figure in the paper is regenerated as one of
    these, so the bench harness can print paper-shaped output without a
    plotting stack. *)

type series = { label : string; points : (float * float) array }

val table : header:string list -> rows:string list list -> string
(** Render an aligned table with a separator under the header. Rows may
    be ragged; missing cells render empty. *)

val line_chart :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?logx:bool ->
  title:string ->
  series list ->
  string
(** Render series on a character grid. Each series is drawn with its own
    glyph ([*], [+], [o], [x], ...) noted in the legend; later series
    overwrite earlier ones where they collide. [logx] plots x on a log2
    scale (all x must be positive). Default size 72x20. *)

val sparkline : float array -> string
(** One-line bar rendering of a data series, min–max normalised. *)
