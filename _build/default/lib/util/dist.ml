type t = { sample : Prng.t -> float; mean : float }

let sample t rng = t.sample rng
let mean_estimate t = t.mean

let constant v = { sample = (fun _ -> v); mean = v }

let uniform ~lo ~hi =
  assert (lo <= hi);
  { sample = (fun rng -> lo +. Prng.float rng (hi -. lo)); mean = (lo +. hi) /. 2.0 }

let exponential ~mean =
  assert (mean > 0.0);
  let sample rng =
    let u = 1.0 -. Prng.unit_float rng in
    -.mean *. log u
  in
  { sample; mean }

let lognormal ~mu ~sigma =
  let sample rng = exp (mu +. (sigma *. Prng.gaussian rng)) in
  { sample; mean = exp (mu +. (sigma *. sigma /. 2.0)) }

let lognormal_of_median ~median ~sigma =
  assert (median > 0.0);
  lognormal ~mu:(log median) ~sigma

let pareto ~xm ~alpha =
  assert (xm > 0.0 && alpha > 0.0);
  let sample rng =
    let u = 1.0 -. Prng.unit_float rng in
    xm /. (u ** (1.0 /. alpha))
  in
  let mean = if alpha > 1.0 then alpha *. xm /. (alpha -. 1.0) else infinity in
  { sample; mean }

let truncate ~lo ~hi t =
  assert (lo <= hi);
  let clamp v = if v < lo then lo else if v > hi then hi else v in
  { sample = (fun rng -> clamp (t.sample rng)); mean = clamp t.mean }

let mixture components =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 components in
  assert (total > 0.0);
  let mean =
    Array.fold_left (fun acc (d, w) -> acc +. (d.mean *. w /. total)) 0.0 components
  in
  let sample rng =
    let d = Prng.pick_weighted rng components in
    d.sample rng
  in
  { sample; mean }

let zipf ~n ~s =
  assert (n > 0);
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  let mean =
    let m = ref 0.0 in
    for i = 0 to n - 1 do
      let p = (1.0 /. (float_of_int (i + 1) ** s)) /. total in
      m := !m +. (float_of_int (i + 1) *. p)
    done;
    !m
  in
  let sample rng =
    let target = Prng.float rng total in
    (* binary search for the first index with cdf >= target *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < target then lo := mid + 1 else hi := mid
    done;
    float_of_int (!lo + 1)
  in
  { sample; mean }

let empirical pairs =
  assert (Array.length pairs > 0);
  let mean =
    let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
    Array.fold_left (fun acc (v, w) -> acc +. (v *. w /. total)) 0.0 pairs
  in
  { sample = (fun rng -> Prng.pick_weighted rng pairs); mean }
