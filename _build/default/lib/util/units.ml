let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024
let kib_f = 1024.0
let mib_f = 1048576.0
let bytes_of_kib n = n * kib
let bytes_of_mib n = n * mib

let pp_bytes ppf n =
  let render unit_name unit_size =
    if n mod unit_size = 0 then Fmt.pf ppf "%d %s" (n / unit_size) unit_name
    else Fmt.pf ppf "%.1f %s" (float_of_int n /. float_of_int unit_size) unit_name
  in
  if n >= gib then render "GB" gib
  else if n >= mib then render "MB" mib
  else if n >= kib then render "KB" kib
  else Fmt.pf ppf "%d B" n

let pp_throughput ppf bps = Fmt.pf ppf "%.2f MB/sec" (bps /. mib_f)

let mb_per_sec ~bytes ~seconds =
  if seconds = 0.0 then nan else float_of_int bytes /. mib_f /. seconds
