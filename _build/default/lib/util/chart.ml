type series = { label : string; points : (float * float) array }

let table ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (cell row i))) 0 all)
  in
  let buf = Buffer.create 256 in
  let emit_row row =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      let c = cell row i in
      Buffer.add_string buf c;
      Buffer.add_string buf (String.make (widths.(i) - String.length c) ' ')
    done;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let line_chart ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "") ?(logx = false)
    ~title series =
  let tx x = if logx then Float.log2 x else x in
  let all_points =
    List.concat_map (fun s -> Array.to_list s.points) series
    |> List.filter (fun (x, _) -> (not logx) || x > 0.0)
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  if all_points = [] then begin
    Buffer.add_string buf "  (no data)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map (fun (x, _) -> tx x) all_points in
    let ys = List.map snd all_points in
    let xmin = List.fold_left min infinity xs and xmax = List.fold_left max neg_infinity xs in
    let ymin = List.fold_left min infinity ys and ymax = List.fold_left max neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let plot gi (x, y) =
      if (not logx) || x > 0.0 then begin
        let cx =
          int_of_float (Float.round ((tx x -. xmin) /. xspan *. float_of_int (width - 1)))
        in
        let cy =
          height - 1
          - int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1)))
        in
        if cx >= 0 && cx < width && cy >= 0 && cy < height then
          grid.(cy).(cx) <- glyphs.(gi mod Array.length glyphs)
      end
    in
    List.iteri (fun gi s -> Array.iter (plot gi) s.points) series;
    let y_axis_width = 9 in
    if y_label <> "" then begin
      Buffer.add_string buf y_label;
      Buffer.add_char buf '\n'
    end;
    for row = 0 to height - 1 do
      let y_here = ymax -. (float_of_int row /. float_of_int (height - 1) *. yspan) in
      if row mod 4 = 0 || row = height - 1 then Buffer.add_string buf (Fmt.str "%8.3f " y_here)
      else Buffer.add_string buf (String.make y_axis_width ' ');
      Buffer.add_char buf '|';
      Array.iter (Buffer.add_char buf) grid.(row);
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make y_axis_width ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    let label_left = if logx then Fmt.str "%.3g" (2.0 ** xmin) else Fmt.str "%.3g" xmin in
    let label_right = if logx then Fmt.str "%.3g" (2.0 ** xmax) else Fmt.str "%.3g" xmax in
    let pad = width - String.length label_left - String.length label_right in
    Buffer.add_string buf (String.make (y_axis_width + 1) ' ');
    Buffer.add_string buf label_left;
    Buffer.add_string buf (String.make (max 1 pad) ' ');
    Buffer.add_string buf label_right;
    if x_label <> "" then Buffer.add_string buf (Fmt.str "  (%s)" x_label);
    Buffer.add_char buf '\n';
    List.iteri
      (fun gi s ->
        Buffer.add_string buf
          (Fmt.str "%s  %c %s\n"
             (String.make y_axis_width ' ')
             glyphs.(gi mod Array.length glyphs)
             s.label))
      series;
    Buffer.contents buf
  end

let spark_levels = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |]

let sparkline data =
  let n = Array.length data in
  if n = 0 then ""
  else begin
    let lo = Array.fold_left min infinity data in
    let hi = Array.fold_left max neg_infinity data in
    let span = if hi > lo then hi -. lo else 1.0 in
    String.init n (fun i ->
        let norm = (data.(i) -. lo) /. span in
        let idx = int_of_float (norm *. float_of_int (Array.length spark_levels - 1)) in
        spark_levels.(max 0 (min (Array.length spark_levels - 1) idx)))
  end
