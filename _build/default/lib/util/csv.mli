(** Minimal CSV output for experiment data (results/ directory).

    Quoting follows RFC 4180: fields containing commas, quotes or
    newlines are quoted, embedded quotes doubled. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val row_count : t -> int

val to_string : t -> string
(** Render all rows, header first. *)

val save : t -> path:string -> unit
(** Write to [path], creating parent directory if needed (one level). *)

val floats : float list -> string list
(** Convenience: format floats with [%.6g]. *)
