(** Byte-size constants and human-readable formatting.

    The paper (and FFS) use power-of-two units: KB = 1024 bytes. *)

val kib : int
val mib : int
val gib : int

val kib_f : float
val mib_f : float

val bytes_of_kib : int -> int
val bytes_of_mib : int -> int

val pp_bytes : Format.formatter -> int -> unit
(** Render e.g. [96 KB], [4.0 MB], [512 B]; exact multiples print without
    a fractional part. *)

val pp_throughput : Format.formatter -> float -> unit
(** Render bytes/second as [X.XX MB/sec]. *)

val mb_per_sec : bytes:int -> seconds:float -> float
(** Throughput in MB/sec (MB = 2^20). [nan] when [seconds = 0]. *)
