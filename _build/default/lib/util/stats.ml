type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile_sorted sorted p =
  let n = Array.length sorted in
  assert (n > 0);
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs p =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted p

let summarize xs =
  assert (Array.length xs > 0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    p50 = percentile_sorted sorted 50.0;
    p90 = percentile_sorted sorted 90.0;
    p99 = percentile_sorted sorted 99.0;
  }

let ratio a b = if b = 0.0 then nan else a /. b

let pct_change ~from_ ~to_ =
  if from_ = 0.0 then nan else (to_ -. from_) /. from_ *. 100.0

type histogram = { lo : float; counts : int array }

let log2_histogram ~lo ~buckets =
  assert (lo > 0.0 && buckets > 0);
  { lo; counts = Array.make buckets 0 }

let hist_add h v =
  let n = Array.length h.counts in
  let idx =
    if v < h.lo then 0
    else begin
      let i = int_of_float (Float.floor (Float.log2 (v /. h.lo))) in
      if i < 0 then 0 else if i >= n then n - 1 else i
    end
  in
  h.counts.(idx) <- h.counts.(idx) + 1

let hist_counts h =
  Array.mapi (fun i c -> (h.lo *. (2.0 ** float_of_int i), c)) h.counts

let weighted_mean pairs =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if total = 0.0 then 0.0
  else Array.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0.0 pairs /. total
