type t = { header : string list; mutable rows : string list list; mutable count : int }

let create ~header = { header; rows = []; count = 0 }

let add_row t row =
  t.rows <- row :: t.rows;
  t.count <- t.count + 1

let row_count t = t.count

let escape field =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quote then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_string t =
  let buf = Buffer.create 1024 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map escape row));
    Buffer.add_char buf '\n'
  in
  emit t.header;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let save t ~path =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let floats fs = List.map (Fmt.str "%.6g") fs
