lib/util/csv.ml: Buffer Filename Fmt List String Sys
