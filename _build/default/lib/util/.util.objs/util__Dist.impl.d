lib/util/dist.ml: Array Prng
