lib/util/stats.mli:
