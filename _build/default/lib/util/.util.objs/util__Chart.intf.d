lib/util/chart.mli:
