lib/util/chart.ml: Array Buffer Float Fmt List String
