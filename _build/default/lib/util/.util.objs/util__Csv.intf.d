lib/util/csv.mli:
