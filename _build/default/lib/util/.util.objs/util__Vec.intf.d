lib/util/vec.mli:
