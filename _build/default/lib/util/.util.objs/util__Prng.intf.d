lib/util/prng.mli:
