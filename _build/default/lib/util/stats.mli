(** Descriptive statistics and histograms for experiment reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Summary statistics of a non-empty sample. The input array is not
    modified. Percentiles use linear interpolation between order
    statistics. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    points. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; array must be non-empty. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or [nan] when [b = 0]. *)

val pct_change : from_:float -> to_:float -> float
(** Percentage change from [from_] to [to_]: [(to_ - from_) / from_ * 100].
    [nan] when [from_ = 0]. *)

type histogram

val log2_histogram : lo:float -> buckets:int -> histogram
(** Histogram with power-of-two bucket boundaries starting at [lo]:
    bucket [i] holds values in [\[lo*2^i, lo*2^(i+1))]. Values below [lo]
    land in bucket 0; values beyond the last boundary land in the last
    bucket. *)

val hist_add : histogram -> float -> unit
val hist_counts : histogram -> (float * int) array
(** [(lower_bound, count)] per bucket. *)

val weighted_mean : (float * float) array -> float
(** [weighted_mean [|(v, w); ...|]]; 0 when total weight is 0. *)
