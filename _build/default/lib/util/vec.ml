type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let grow t v =
  let cap = Array.length t.data in
  let data = Array.make (max 8 (2 * cap)) v in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t v;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc
