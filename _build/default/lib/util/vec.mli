(** Growable arrays (OCaml 5.1 has no [Dynarray] yet). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val last : 'a t -> 'a option
val pop : 'a t -> 'a option
val clear : 'a t -> unit
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
