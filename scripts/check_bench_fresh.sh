#!/bin/sh
# Stale-benchmark guard for CI.
#
# `make verify` regenerates every committed benchmark baseline
# (BENCH_alloc.json, BENCH_fleet.json, BENCH_age_parallel.json,
# BENCH_backend.json, BENCH_scrub.json) as a
# side effect of gating against it. A verify run that somehow skipped a
# benchmark would leave the committed file untouched and the gate
# silently green — so CI touches a stamp file before verify and this
# script fails unless every baseline exists, is non-empty, and is newer
# than the stamp.
#
# Usage: scripts/check_bench_fresh.sh STAMP_FILE [BENCH_FILE ...]

set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 STAMP_FILE [BENCH_FILE ...]" >&2
    exit 2
fi

stamp=$1
shift
if [ ! -e "$stamp" ]; then
    echo "check_bench_fresh: stamp file $stamp missing (touch it before make verify)" >&2
    exit 2
fi

# default to the full committed set
if [ "$#" -eq 0 ]; then
    set -- BENCH_alloc.json BENCH_fleet.json BENCH_age_parallel.json BENCH_backend.json BENCH_scrub.json
fi

fail=0
for bench in "$@"; do
    if [ ! -s "$bench" ]; then
        echo "check_bench_fresh: $bench missing or empty — make verify did not produce it" >&2
        fail=1
    elif [ ! "$bench" -nt "$stamp" ]; then
        echo "check_bench_fresh: $bench is stale (not regenerated since $stamp) — the verify run skipped its benchmark" >&2
        fail=1
    else
        echo "check_bench_fresh: $bench fresh"
    fi
done
exit $fail
